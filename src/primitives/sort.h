// Parallel comparison sort — Table 1: O(n log n) work, O(log n) depth
// [11, 27]. Implemented as a cache-friendly samplesort in the style of the
// PBBS low-depth samplesort [11]: sample pivots, classify elements into
// buckets with per-block counting, scatter with offsets from a prefix sum,
// and sort buckets in parallel.
#ifndef PDBSCAN_PRIMITIVES_SORT_H_
#define PDBSCAN_PRIMITIVES_SORT_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "parallel/scheduler.h"
#include "primitives/random.h"

namespace pdbscan::primitives {

namespace internal {
inline constexpr size_t kSortSerialCutoff = 1 << 13;
inline constexpr size_t kSortOversample = 8;
}  // namespace internal

template <typename T, typename Cmp = std::less<T>>
void ParallelSort(std::span<T> a, Cmp cmp = Cmp()) {
  const size_t n = a.size();
  if (n <= internal::kSortSerialCutoff || parallel::num_workers() == 1) {
    std::sort(a.begin(), a.end(), cmp);
    return;
  }

  // Choose bucket count so buckets end up around the serial cutoff.
  size_t num_buckets = 2;
  while (num_buckets < 512 && num_buckets * internal::kSortSerialCutoff < n) {
    num_buckets *= 2;
  }

  // Sample deterministic pseudorandom positions and sort the sample.
  const size_t sample_size = num_buckets * internal::kSortOversample;
  Random rng(0x5eed5a1u);
  std::vector<T> sample;
  sample.reserve(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    sample.push_back(a[rng.IthRand(i, n)]);
  }
  std::sort(sample.begin(), sample.end(), cmp);
  std::vector<T> pivots;  // num_buckets - 1 pivots.
  pivots.reserve(num_buckets - 1);
  for (size_t k = 1; k < num_buckets; ++k) {
    pivots.push_back(sample[k * internal::kSortOversample]);
  }

  // Classify each element (bucket = upper_bound over pivots).
  const size_t block = 1 << 14;
  const size_t num_blocks = (n + block - 1) / block;
  std::vector<uint32_t> bucket_of(n);
  std::vector<size_t> counts(num_blocks * num_buckets, 0);
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = lo + block < n ? lo + block : n;
        size_t* my_counts = counts.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) {
          const auto it =
              std::upper_bound(pivots.begin(), pivots.end(), a[i], cmp);
          const uint32_t k = static_cast<uint32_t>(it - pivots.begin());
          bucket_of[i] = k;
          ++my_counts[k];
        }
      },
      1);

  // Global offsets: bucket-major, block-minor (serial; the matrix is small).
  std::vector<size_t> bucket_starts(num_buckets + 1, 0);
  {
    size_t offset = 0;
    for (size_t k = 0; k < num_buckets; ++k) {
      bucket_starts[k] = offset;
      for (size_t b = 0; b < num_blocks; ++b) {
        const size_t c = counts[b * num_buckets + k];
        counts[b * num_buckets + k] = offset;
        offset += c;
      }
    }
    bucket_starts[num_buckets] = offset;
  }

  // Scatter into a temporary buffer.
  std::vector<T> out(n);
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = lo + block < n ? lo + block : n;
        size_t* my_offsets = counts.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) {
          out[my_offsets[bucket_of[i]]++] = std::move(a[i]);
        }
      },
      1);

  // Sort buckets in parallel and copy back.
  parallel::parallel_for(
      0, num_buckets,
      [&](size_t k) {
        const size_t lo = bucket_starts[k];
        const size_t hi = bucket_starts[k + 1];
        std::sort(out.begin() + lo, out.begin() + hi, cmp);
        std::copy(out.begin() + lo, out.begin() + hi, a.begin() + lo);
      },
      1);
}

template <typename T, typename Cmp = std::less<T>>
void ParallelSort(std::vector<T>& a, Cmp cmp = Cmp()) {
  ParallelSort(std::span<T>(a), cmp);
}

}  // namespace pdbscan::primitives

#endif  // PDBSCAN_PRIMITIVES_SORT_H_
