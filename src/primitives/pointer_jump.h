// Pointer jumping for flag propagation along a linked structure —
// the parallel strip/box construction primitive of Section 4.2 of the paper.
//
// Each node i has a parent next[i] (next[i] == i marks a list tail). Nodes
// carry a 0/1 flag; PropagateFlags makes flag[j] = 1 for every node j
// reachable from a flagged node by following parent pointers. On each round
// every flagged node flags its parent and all nodes jump to their
// grandparent, so the algorithm finishes in O(log n) rounds.
#ifndef PDBSCAN_PRIMITIVES_POINTER_JUMP_H_
#define PDBSCAN_PRIMITIVES_POINTER_JUMP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/scheduler.h"

namespace pdbscan::primitives {

// `next` is consumed (pointers are rewritten to ancestors). `flags` is
// updated in place: final flags are the closure of the initial flags under
// "flag my parent". Writes to flags are monotone (0 -> 1), so the benign
// write race is safe with relaxed atomics.
inline void PointerJumpPropagate(std::vector<size_t>& next,
                                 std::vector<uint8_t>& flags) {
  const size_t n = next.size();
  if (n == 0) return;
  auto* atomic_flags = reinterpret_cast<std::atomic<uint8_t>*>(flags.data());
  static_assert(sizeof(std::atomic<uint8_t>) == sizeof(uint8_t));
  std::vector<size_t> next_copy(n);
  std::atomic<bool> changed(true);
  while (changed.load(std::memory_order_acquire)) {
    changed.store(false, std::memory_order_release);
    parallel::parallel_for(0, n, [&](size_t i) {
      const size_t p = next[i];
      if (p == i) return;
      if (atomic_flags[i].load(std::memory_order_relaxed) == 1 &&
          atomic_flags[p].load(std::memory_order_relaxed) == 0) {
        atomic_flags[p].store(1, std::memory_order_relaxed);
        changed.store(true, std::memory_order_relaxed);
      }
      const size_t gp = next[p];
      next_copy[i] = gp;
      if (gp != p) changed.store(true, std::memory_order_relaxed);
    });
    parallel::parallel_for(0, n, [&](size_t i) {
      if (next[i] != i) next[i] = next_copy[i];
    });
  }
}

}  // namespace pdbscan::primitives

#endif  // PDBSCAN_PRIMITIVES_POINTER_JUMP_H_
