// Parallel filter (pack) — Table 1: O(n) work, O(log n) depth [56].
// Flags -> prefix sum -> scatter, exactly as described in Section 2 of the
// paper.
#ifndef PDBSCAN_PRIMITIVES_FILTER_H_
#define PDBSCAN_PRIMITIVES_FILTER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/scheduler.h"
#include "primitives/scan.h"

namespace pdbscan::primitives {

// Returns the elements a[i] for which pred(a[i]) is true, preserving order.
template <typename T, typename Pred>
std::vector<T> Filter(std::span<const T> a, Pred&& pred) {
  const size_t n = a.size();
  std::vector<size_t> flags(n);
  parallel::parallel_for(0, n,
                         [&](size_t i) { flags[i] = pred(a[i]) ? 1 : 0; });
  const size_t count = ScanExclusive(std::span<size_t>(flags));
  std::vector<T> out(count);
  parallel::parallel_for(0, n, [&](size_t i) {
    const bool keep = (i + 1 < n) ? flags[i] != flags[i + 1] : flags[i] != count;
    if (keep) out[flags[i]] = a[i];
  });
  return out;
}

template <typename T, typename Pred>
std::vector<T> Filter(const std::vector<T>& a, Pred&& pred) {
  return Filter(std::span<const T>(a), pred);
}

// Returns the *indices* i in [0, n) for which pred(i) is true, in order.
template <typename Pred>
std::vector<size_t> FilterIndex(size_t n, Pred&& pred) {
  std::vector<size_t> flags(n);
  parallel::parallel_for(0, n, [&](size_t i) { flags[i] = pred(i) ? 1 : 0; });
  const size_t count = ScanExclusive(std::span<size_t>(flags));
  std::vector<size_t> out(count);
  parallel::parallel_for(0, n, [&](size_t i) {
    const bool keep = (i + 1 < n) ? flags[i] != flags[i + 1] : flags[i] != count;
    if (keep) out[flags[i]] = i;
  });
  return out;
}

}  // namespace pdbscan::primitives

#endif  // PDBSCAN_PRIMITIVES_FILTER_H_
