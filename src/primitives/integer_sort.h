// Parallel stable integer sort for small key ranges — Table 1: O(n) work,
// O(log n) depth for polylogarithmic key ranges [86]. Exactly the algorithm
// sketched in Section 2 of the paper: per-partition histograms built
// serially in parallel across partitions, a prefix sum over per-key counts
// to obtain unique offsets, and a parallel scatter.
//
// Used by the quadtree builder (keys in [0, 2^d)) and by the box-method
// strip bookkeeping.
#ifndef PDBSCAN_PRIMITIVES_INTEGER_SORT_H_
#define PDBSCAN_PRIMITIVES_INTEGER_SORT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/scheduler.h"

namespace pdbscan::primitives {

// Stable-sorts `a` by key(a[i]) where keys lie in [0, num_buckets).
// `num_buckets` should be small (hundreds); work is O(n + num_buckets * P).
template <typename T, typename KeyF>
void IntegerSort(std::span<T> a, size_t num_buckets, KeyF&& key) {
  const size_t n = a.size();
  if (n == 0 || num_buckets <= 1) return;
  constexpr size_t kBlock = 1 << 14;
  const size_t num_blocks = (n + kBlock - 1) / kBlock;

  if (num_blocks == 1 || parallel::num_workers() == 1) {
    // Serial counting sort.
    std::vector<size_t> counts(num_buckets + 1, 0);
    for (size_t i = 0; i < n; ++i) ++counts[key(a[i]) + 1];
    for (size_t k = 1; k <= num_buckets; ++k) counts[k] += counts[k - 1];
    std::vector<T> out(n);
    for (size_t i = 0; i < n; ++i) out[counts[key(a[i])]++] = std::move(a[i]);
    std::move(out.begin(), out.end(), a.begin());
    return;
  }

  std::vector<size_t> counts(num_blocks * num_buckets, 0);
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t lo = b * kBlock;
        const size_t hi = lo + kBlock < n ? lo + kBlock : n;
        size_t* my_counts = counts.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) ++my_counts[key(a[i])];
      },
      1);

  // Offsets: bucket-major, block-minor for stability.
  size_t offset = 0;
  for (size_t k = 0; k < num_buckets; ++k) {
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t c = counts[b * num_buckets + k];
      counts[b * num_buckets + k] = offset;
      offset += c;
    }
  }

  std::vector<T> out(n);
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t lo = b * kBlock;
        const size_t hi = lo + kBlock < n ? lo + kBlock : n;
        size_t* my_offsets = counts.data() + b * num_buckets;
        for (size_t i = lo; i < hi; ++i) {
          out[my_offsets[key(a[i])]++] = std::move(a[i]);
        }
      },
      1);
  parallel::parallel_for(0, n, [&](size_t i) { a[i] = std::move(out[i]); });
}

template <typename T, typename KeyF>
void IntegerSort(std::vector<T>& a, size_t num_buckets, KeyF&& key) {
  IntegerSort(std::span<T>(a), num_buckets, key);
}

}  // namespace pdbscan::primitives

#endif  // PDBSCAN_PRIMITIVES_INTEGER_SORT_H_
