// Parallel merge — Table 1: O(n) work, O(log n) depth [56].
//
// Divide-and-conquer dual binary search: split the larger input at its
// midpoint, locate the split point in the other input by binary search, and
// merge the two halves in parallel. Used by the box-method neighbor linking
// (Section 4.2) and by tests of the USEC query decomposition.
#ifndef PDBSCAN_PRIMITIVES_MERGE_H_
#define PDBSCAN_PRIMITIVES_MERGE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "parallel/scheduler.h"

namespace pdbscan::primitives {

namespace internal {
inline constexpr size_t kMergeSerialCutoff = 1 << 13;
}  // namespace internal

// Merges sorted ranges `a` and `b` into `out` (out.size() == a.size() +
// b.size()) under comparator `cmp`. Stable with respect to a-before-b.
template <typename T, typename Cmp = std::less<T>>
void ParallelMerge(std::span<const T> a, std::span<const T> b,
                   std::span<T> out, Cmp cmp = Cmp()) {
  if (a.size() + b.size() <= internal::kMergeSerialCutoff ||
      parallel::num_workers() == 1) {
    std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin(), cmp);
    return;
  }
  if (a.size() < b.size()) {
    // Keep `a` as the larger side; swap with care for stability:
    // elements of `b` equal to an element of `a` must come after it, so
    // when splitting on b's midpoint we use lower_bound in `a`.
    const size_t mid_b = b.size() / 2;
    const size_t split_a = static_cast<size_t>(
        std::lower_bound(a.begin(), a.end(), b[mid_b], cmp) - a.begin());
    parallel::fork_join(
        [&]() {
          ParallelMerge(a.subspan(0, split_a), b.subspan(0, mid_b),
                        out.subspan(0, split_a + mid_b), cmp);
        },
        [&]() {
          ParallelMerge(a.subspan(split_a), b.subspan(mid_b),
                        out.subspan(split_a + mid_b), cmp);
        });
    return;
  }
  const size_t mid_a = a.size() / 2;
  const size_t split_b = static_cast<size_t>(
      std::upper_bound(b.begin(), b.end(), a[mid_a], cmp) - b.begin());
  parallel::fork_join(
      [&]() {
        ParallelMerge(a.subspan(0, mid_a), b.subspan(0, split_b),
                      out.subspan(0, mid_a + split_b), cmp);
      },
      [&]() {
        ParallelMerge(a.subspan(mid_a), b.subspan(split_b),
                      out.subspan(mid_a + split_b), cmp);
      });
}

}  // namespace pdbscan::primitives

#endif  // PDBSCAN_PRIMITIVES_MERGE_H_
