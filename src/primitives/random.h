// Deterministic hash-based pseudorandomness (PBBS-style).
//
// Parallel algorithms need per-index random values that do not depend on the
// execution schedule; seeded counter hashing provides exactly that.
#ifndef PDBSCAN_PRIMITIVES_RANDOM_H_
#define PDBSCAN_PRIMITIVES_RANDOM_H_

#include <cstdint>

namespace pdbscan::primitives {

// Finalizer from splitmix64; a high-quality 64-bit mixing function.
inline uint64_t Hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Combines two 64-bit values into one hash (for multi-word keys).
inline uint64_t HashCombine64(uint64_t seed, uint64_t value) {
  return Hash64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                        (seed >> 2)));
}

// A stateless random generator: the i-th draw is a pure function of
// (seed, i), so parallel loops can draw independently per index.
class Random {
 public:
  explicit Random(uint64_t seed = 0) : seed_(seed) {}

  // i-th 64-bit pseudorandom value.
  uint64_t IthRand(uint64_t i) const { return Hash64(seed_ ^ Hash64(i)); }

  // i-th pseudorandom value in [0, bound).
  uint64_t IthRand(uint64_t i, uint64_t bound) const {
    return IthRand(i) % bound;
  }

  // i-th pseudorandom double in [0, 1).
  double IthDouble(uint64_t i) const {
    return static_cast<double>(IthRand(i) >> 11) * 0x1.0p-53;
  }

  // A fresh generator whose stream is independent of this one.
  Random Fork(uint64_t stream) const { return Random(Hash64(seed_ ^ Hash64(~stream))); }

 private:
  uint64_t seed_;
};

}  // namespace pdbscan::primitives

#endif  // PDBSCAN_PRIMITIVES_RANDOM_H_
