// Parallel reduction and element-wise map helpers.
#ifndef PDBSCAN_PRIMITIVES_REDUCE_H_
#define PDBSCAN_PRIMITIVES_REDUCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/scheduler.h"

namespace pdbscan::primitives {

// Reduces f(lo), ..., f(hi-1) with the associative operator `op`, starting
// from `identity`. O(n) work, O(log n) depth (blocked tree reduction).
template <typename T, typename F, typename Op>
T ReduceIndex(size_t lo, size_t hi, T identity, F&& f, Op&& op) {
  const size_t n = hi > lo ? hi - lo : 0;
  if (n == 0) return identity;
  constexpr size_t kBlock = 2048;
  const size_t num_blocks = (n + kBlock - 1) / kBlock;
  if (num_blocks == 1 || parallel::num_workers() == 1) {
    T acc = identity;
    for (size_t i = lo; i < hi; ++i) acc = op(acc, f(i));
    return acc;
  }
  std::vector<T> block_acc(num_blocks, identity);
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t s = lo + b * kBlock;
        const size_t e = s + kBlock < hi ? s + kBlock : hi;
        T acc = identity;
        for (size_t i = s; i < e; ++i) acc = op(acc, f(i));
        block_acc[b] = acc;
      },
      1);
  T acc = identity;
  for (size_t b = 0; b < num_blocks; ++b) acc = op(acc, block_acc[b]);
  return acc;
}

// Sum of the elements of `a`.
template <typename T>
T ReduceSum(std::span<const T> a) {
  return ReduceIndex(
      size_t{0}, a.size(), T{}, [&](size_t i) { return a[i]; },
      [](T x, T y) { return x + y; });
}

// Maximum of f(i) over [lo, hi); returns `identity` for an empty range.
template <typename T, typename F>
T ReduceMax(size_t lo, size_t hi, T identity, F&& f) {
  return ReduceIndex(lo, hi, identity, f,
                     [](T x, T y) { return x < y ? y : x; });
}

// Minimum of f(i) over [lo, hi); returns `identity` for an empty range.
template <typename T, typename F>
T ReduceMin(size_t lo, size_t hi, T identity, F&& f) {
  return ReduceIndex(lo, hi, identity, f,
                     [](T x, T y) { return y < x ? y : x; });
}

// Number of indices in [lo, hi) satisfying the predicate.
template <typename Pred>
size_t CountIf(size_t lo, size_t hi, Pred&& pred) {
  return ReduceIndex(
      lo, hi, size_t{0}, [&](size_t i) { return pred(i) ? size_t{1} : size_t{0}; },
      [](size_t x, size_t y) { return x + y; });
}

}  // namespace pdbscan::primitives

#endif  // PDBSCAN_PRIMITIVES_REDUCE_H_
