// Parallel prefix sum (scan) — Table 1 of the paper: O(n) work, O(log n)
// depth [56]. Implemented as the standard blocked two-pass algorithm:
// per-block sums in parallel, a scan over the (few) block sums, then a
// parallel second pass that rewrites each block.
#ifndef PDBSCAN_PRIMITIVES_SCAN_H_
#define PDBSCAN_PRIMITIVES_SCAN_H_

#include <cstddef>
#include <span>
#include <vector>

#include "parallel/scheduler.h"

namespace pdbscan::primitives {

namespace internal {
inline constexpr size_t kScanBlockSize = 2048;
}  // namespace internal

// In-place exclusive scan with addition: a[i] becomes sum of a[0..i).
// Returns the total sum of the input.
template <typename T>
T ScanExclusive(std::span<T> a) {
  const size_t n = a.size();
  if (n == 0) return T{};
  const size_t block = internal::kScanBlockSize;
  const size_t num_blocks = (n + block - 1) / block;
  if (num_blocks == 1 || parallel::num_workers() == 1) {
    T sum{};
    for (size_t i = 0; i < n; ++i) {
      T value = a[i];
      a[i] = sum;
      sum += value;
    }
    return sum;
  }
  std::vector<T> block_sums(num_blocks);
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = lo + block < n ? lo + block : n;
        T sum{};
        for (size_t i = lo; i < hi; ++i) sum += a[i];
        block_sums[b] = sum;
      },
      1);
  T total{};
  for (size_t b = 0; b < num_blocks; ++b) {
    T value = block_sums[b];
    block_sums[b] = total;
    total += value;
  }
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = lo + block < n ? lo + block : n;
        T sum = block_sums[b];
        for (size_t i = lo; i < hi; ++i) {
          T value = a[i];
          a[i] = sum;
          sum += value;
        }
      },
      1);
  return total;
}

// Convenience overload for vectors.
template <typename T>
T ScanExclusive(std::vector<T>& a) {
  return ScanExclusive(std::span<T>(a));
}

// Inclusive scan: a[i] becomes sum of a[0..i]. Returns the total.
template <typename T>
T ScanInclusive(std::span<T> a) {
  const size_t n = a.size();
  if (n == 0) return T{};
  const size_t block = internal::kScanBlockSize;
  const size_t num_blocks = (n + block - 1) / block;
  if (num_blocks == 1 || parallel::num_workers() == 1) {
    T sum{};
    for (size_t i = 0; i < n; ++i) {
      sum += a[i];
      a[i] = sum;
    }
    return sum;
  }
  std::vector<T> block_sums(num_blocks);
  parallel::parallel_for(
      0, num_blocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = lo + block < n ? lo + block : n;
        T sum{};
        for (size_t i = lo; i < hi; ++i) {
          sum += a[i];
          a[i] = sum;
        }
        block_sums[b] = sum;
      },
      1);
  T total{};
  for (size_t b = 0; b < num_blocks; ++b) {
    T value = block_sums[b];
    block_sums[b] = total;
    total += value;
  }
  parallel::parallel_for(
      1, num_blocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = lo + block < n ? lo + block : n;
        const T offset = block_sums[b];
        for (size_t i = lo; i < hi; ++i) a[i] += offset;
      },
      1);
  return total;
}

template <typename T>
T ScanInclusive(std::vector<T>& a) {
  return ScanInclusive(std::span<T>(a));
}

}  // namespace pdbscan::primitives

#endif  // PDBSCAN_PRIMITIVES_SCAN_H_
