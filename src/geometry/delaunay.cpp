#include "geometry/delaunay.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "primitives/random.h"

namespace pdbscan::geometry {

namespace {

constexpr int32_t kNone = -1;

// Cross product of (b - a) x (c - a): > 0 iff (a, b, c) is counterclockwise.
long double Cross(const Point<2>& a, const Point<2>& b, const Point<2>& c) {
  const long double abx = static_cast<long double>(b[0]) - a[0];
  const long double aby = static_cast<long double>(b[1]) - a[1];
  const long double acx = static_cast<long double>(c[0]) - a[0];
  const long double acy = static_cast<long double>(c[1]) - a[1];
  return abx * acy - aby * acx;
}

// In-circle test for a counterclockwise triangle (a, b, c): > 0 iff p lies
// strictly inside the circumcircle.
long double InCircle(const Point<2>& a, const Point<2>& b, const Point<2>& c,
                     const Point<2>& p) {
  const long double adx = static_cast<long double>(a[0]) - p[0];
  const long double ady = static_cast<long double>(a[1]) - p[1];
  const long double bdx = static_cast<long double>(b[0]) - p[0];
  const long double bdy = static_cast<long double>(b[1]) - p[1];
  const long double cdx = static_cast<long double>(c[0]) - p[0];
  const long double cdy = static_cast<long double>(c[1]) - p[1];
  const long double ad2 = adx * adx + ady * ady;
  const long double bd2 = bdx * bdx + bdy * bdy;
  const long double cd2 = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd2 - bd2 * cdy) - ady * (bdx * cd2 - bd2 * cdx) +
         ad2 * (bdx * cdy - bdy * cdx);
}

// Squared circumradius of the triangle (a, b, c); infinity if degenerate.
long double CircumradiusSquared(const Point<2>& a, const Point<2>& b,
                                const Point<2>& c) {
  const long double dx = static_cast<long double>(b[0]) - a[0];
  const long double dy = static_cast<long double>(b[1]) - a[1];
  const long double ex = static_cast<long double>(c[0]) - a[0];
  const long double ey = static_cast<long double>(c[1]) - a[1];
  const long double bl = dx * dx + dy * dy;
  const long double cl = ex * ex + ey * ey;
  const long double d = dx * ey - dy * ex;
  if (d == 0) return std::numeric_limits<long double>::infinity();
  const long double x = (ey * bl - dy * cl) * 0.5L / d;
  const long double y = (dx * cl - ex * bl) * 0.5L / d;
  return x * x + y * y;
}

Point<2> Circumcenter(const Point<2>& a, const Point<2>& b,
                      const Point<2>& c) {
  const long double dx = static_cast<long double>(b[0]) - a[0];
  const long double dy = static_cast<long double>(b[1]) - a[1];
  const long double ex = static_cast<long double>(c[0]) - a[0];
  const long double ey = static_cast<long double>(c[1]) - a[1];
  const long double bl = dx * dx + dy * dy;
  const long double cl = ex * ex + ey * ey;
  const long double d = dx * ey - dy * ex;
  const long double x = a[0] + (ey * bl - dy * cl) * 0.5L / d;
  const long double y = a[1] + (dx * cl - ex * bl) * 0.5L / d;
  return Point<2>{{static_cast<double>(x), static_cast<double>(y)}};
}

// Monotone pseudo-angle of a direction, in [0, 1).
double PseudoAngle(double dx, double dy) {
  const double denom = std::abs(dx) + std::abs(dy);
  if (denom == 0) return 0;
  const double p = dx / denom;
  return (dy > 0 ? 3.0 - p : 1.0 + p) / 4.0;
}

}  // namespace

Delaunay::Delaunay(std::span<const Point<2>> points, uint64_t jitter_seed) {
  if (jitter_seed == 0) {
    Build(points);
    return;
  }
  BBox<2> box = ComputeBBox(points.data(), points.size());
  const double dx = box.max[0] - box.min[0];
  const double dy = box.max[1] - box.min[1];
  const double diag = std::sqrt(dx * dx + dy * dy);
  const double magnitude = (diag > 0 ? diag : 1.0) * 1e-9;
  primitives::Random rng(jitter_seed);
  std::vector<Point<2>> jittered(points.begin(), points.end());
  for (size_t i = 0; i < jittered.size(); ++i) {
    jittered[i][0] += (rng.IthDouble(2 * i) - 0.5) * magnitude;
    jittered[i][1] += (rng.IthDouble(2 * i + 1) - 0.5) * magnitude;
  }
  Build(jittered);
}

void Delaunay::Build(std::span<const Point<2>> points) {
  const size_t n = points.size();
  triangles_.clear();
  halfedges_.clear();
  if (n == 0) {
    degenerate_ = true;
    return;
  }

  // --- Seed triangle selection -------------------------------------------
  BBox<2> box = ComputeBBox(points.data(), n);
  Point<2> center{{0.5 * (box.min[0] + box.max[0]),
                   0.5 * (box.min[1] + box.max[1])}};

  size_t i0 = 0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const double d = points[i].SquaredDistance(center);
    if (d < best) {
      best = d;
      i0 = i;
    }
  }
  size_t i1 = SIZE_MAX;
  best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    if (i == i0) continue;
    const double d = points[i].SquaredDistance(points[i0]);
    if (d < best && d > 0) {
      best = d;
      i1 = i;
    }
  }
  size_t i2 = SIZE_MAX;
  long double best_r = std::numeric_limits<long double>::infinity();
  if (i1 != SIZE_MAX) {
    for (size_t i = 0; i < n; ++i) {
      if (i == i0 || i == i1) continue;
      const long double r = CircumradiusSquared(points[i0], points[i1], points[i]);
      if (r < best_r) {
        best_r = r;
        i2 = i;
      }
    }
  }
  if (i2 == SIZE_MAX || std::isinf(static_cast<double>(best_r))) {
    // All points collinear (or fewer than 3 distinct points): the Delaunay
    // graph degenerates to the chain between coordinate-sorted neighbors.
    degenerate_ = true;
    degenerate_chain_.resize(n);
    std::iota(degenerate_chain_.begin(), degenerate_chain_.end(), 0u);
    std::sort(degenerate_chain_.begin(), degenerate_chain_.end(),
              [&](uint32_t a, uint32_t b) {
                if (points[a][0] != points[b][0]) {
                  return points[a][0] < points[b][0];
                }
                return points[a][1] < points[b][1];
              });
    return;
  }
  degenerate_ = false;
  if (Cross(points[i0], points[i1], points[i2]) < 0) std::swap(i1, i2);
  center = Circumcenter(points[i0], points[i1], points[i2]);

  // Insertion order: increasing distance from the seed circumcenter, which
  // guarantees every inserted point lies outside the current hull.
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  std::vector<double> dists(n);
  for (size_t i = 0; i < n; ++i) dists[i] = points[i].SquaredDistance(center);
  std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    if (dists[a] != dists[b]) return dists[a] < dists[b];
    return a < b;
  });

  // --- Hull state ----------------------------------------------------------
  const size_t hash_size =
      static_cast<size_t>(std::llround(std::ceil(std::sqrt(double(n))))) + 1;
  std::vector<int32_t> hull_hash(hash_size, kNone);
  std::vector<uint32_t> hull_next(n), hull_prev(n);
  std::vector<int32_t> hull_tri(n, kNone);  // Hull halfedge starting at v.

  auto hash_key = [&](const Point<2>& p) -> size_t {
    const double angle = PseudoAngle(p[0] - center[0], p[1] - center[1]);
    size_t k = static_cast<size_t>(std::floor(angle * double(hash_size)));
    return k >= hash_size ? hash_size - 1 : k;
  };

  const size_t max_triangles = n < 3 ? 1 : 2 * n - 5;
  triangles_.reserve(max_triangles * 3);
  halfedges_.reserve(max_triangles * 3);

  auto link = [&](int32_t a, int32_t b) {
    if (a != kNone) halfedges_[static_cast<size_t>(a)] = b;
    if (b != kNone) halfedges_[static_cast<size_t>(b)] = a;
  };
  // Adds triangle (v0, v1, v2); t0/t1/t2 are the twins of edges v0->v1,
  // v1->v2, v2->v0. Returns the id of the first halfedge.
  auto add_triangle = [&](uint32_t v0, uint32_t v1, uint32_t v2, int32_t t0,
                          int32_t t1, int32_t t2) -> int32_t {
    const int32_t e = static_cast<int32_t>(triangles_.size());
    triangles_.push_back(v0);
    triangles_.push_back(v1);
    triangles_.push_back(v2);
    halfedges_.push_back(kNone);
    halfedges_.push_back(kNone);
    halfedges_.push_back(kNone);
    link(e, t0);
    link(e + 1, t1);
    link(e + 2, t2);
    return e;
  };

  // Flips non-Delaunay edges until the triangulation around `a` is locally
  // Delaunay. Returns a halfedge that starts at the newly inserted point
  // (used as its hull-edge pointer).
  std::vector<int32_t> flip_stack;
  auto legalize = [&](int32_t a) -> int32_t {
    int32_t ar = 0;
    flip_stack.clear();
    while (true) {
      const int32_t b = halfedges_[static_cast<size_t>(a)];
      const int32_t a0 = a - a % 3;
      ar = a0 + (a + 2) % 3;
      if (b == kNone) {
        if (flip_stack.empty()) break;
        a = flip_stack.back();
        flip_stack.pop_back();
        continue;
      }
      const int32_t b0 = b - b % 3;
      const int32_t al = a0 + (a + 1) % 3;
      const int32_t bl = b0 + (b + 2) % 3;
      const uint32_t p0 = triangles_[static_cast<size_t>(ar)];
      const uint32_t pr = triangles_[static_cast<size_t>(a)];
      const uint32_t pl = triangles_[static_cast<size_t>(al)];
      const uint32_t p1 = triangles_[static_cast<size_t>(bl)];
      // (p0, pr, pl) is a cyclic rotation of a's triangle, so it is CCW.
      const bool illegal =
          InCircle(points[p0], points[pr], points[pl], points[p1]) > 0;
      if (illegal) {
        // Flip the shared edge: a takes p1, b takes p0.
        triangles_[static_cast<size_t>(a)] = p1;
        triangles_[static_cast<size_t>(b)] = p0;
        const int32_t hbl = halfedges_[static_cast<size_t>(bl)];
        if (hbl == kNone) {
          // bl was a hull edge (started at p1); edge a replaces it.
          if (hull_tri[p1] == bl) {
            hull_tri[p1] = a;
          } else {
            // Rare: scan for the stale pointer.
            for (size_t v = 0; v < n; ++v) {
              if (hull_tri[v] == bl) {
                hull_tri[v] = a;
                break;
              }
            }
          }
        }
        link(a, hbl);
        link(b, halfedges_[static_cast<size_t>(ar)]);
        link(ar, bl);
        const int32_t br = b0 + (b + 1) % 3;
        flip_stack.push_back(br);
        // Re-examine edge a (it changed).
      } else {
        if (flip_stack.empty()) break;
        a = flip_stack.back();
        flip_stack.pop_back();
      }
    }
    return ar;
  };

  // Initial hull = seed triangle (counterclockwise).
  const uint32_t s0 = static_cast<uint32_t>(i0);
  const uint32_t s1 = static_cast<uint32_t>(i1);
  const uint32_t s2 = static_cast<uint32_t>(i2);
  uint32_t hull_start = s0;
  hull_next[s0] = s1;
  hull_prev[s1] = s0;
  hull_next[s1] = s2;
  hull_prev[s2] = s1;
  hull_next[s2] = s0;
  hull_prev[s0] = s2;
  hull_tri[s0] = 0;
  hull_tri[s1] = 1;
  hull_tri[s2] = 2;
  hull_hash[hash_key(points[s0])] = static_cast<int32_t>(s0);
  hull_hash[hash_key(points[s1])] = static_cast<int32_t>(s1);
  hull_hash[hash_key(points[s2])] = static_cast<int32_t>(s2);
  add_triangle(s0, s1, s2, kNone, kNone, kNone);

  Point<2> prev_point{{std::numeric_limits<double>::quiet_NaN(),
                       std::numeric_limits<double>::quiet_NaN()}};
  for (size_t k = 0; k < n; ++k) {
    const uint32_t i = ids[k];
    const Point<2>& p = points[i];
    if (i == s0 || i == s1 || i == s2) continue;
    // Skip exact duplicates of the previously inserted point (and of the
    // seeds); duplicates are irrelevant for the DBSCAN edge filter because
    // they share a grid cell with their twin.
    if (p[0] == prev_point[0] && p[1] == prev_point[1]) continue;
    prev_point = p;
    if (p == points[s0] || p == points[s1] || p == points[s2]) continue;

    // Find a visible hull edge via the angular hash.
    const size_t key = hash_key(p);
    int32_t start = kNone;
    for (size_t j = 0; j < hash_size; ++j) {
      start = hull_hash[(key + j) % hash_size];
      if (start != kNone && hull_next[static_cast<uint32_t>(start)] !=
                                static_cast<uint32_t>(start)) {
        break;
      }
    }
    // Walk from the hashed vertex to the first visible edge. The hash entry
    // may be stale, so fall back to a full hull walk if needed.
    uint32_t e = hull_prev[static_cast<uint32_t>(start)];
    const uint32_t walk_start = e;
    while (Cross(points[e], points[hull_next[e]], p) >= 0) {
      e = hull_next[e];
      if (e == walk_start) {
        e = std::numeric_limits<uint32_t>::max();
        break;
      }
    }
    if (e == std::numeric_limits<uint32_t>::max()) continue;  // Degenerate.

    // First new triangle (e, p, next[e]); its third edge twins the old hull
    // triangle at e.
    uint32_t first = e;
    uint32_t next_v = hull_next[e];
    int32_t t = add_triangle(e, static_cast<uint32_t>(i), next_v, kNone, kNone,
                             hull_tri[e]);
    hull_tri[i] = legalize(t + 2);
    hull_tri[e] = t;  // Edge e -> i is now on the hull.

    // Walk forward: attach triangles while the next hull edge is visible.
    uint32_t q = next_v;
    while (true) {
      const uint32_t next_q = hull_next[q];
      if (Cross(points[q], points[next_q], p) >= 0) break;
      t = add_triangle(q, static_cast<uint32_t>(i), next_q, hull_tri[i], kNone,
                       hull_tri[q]);
      hull_tri[i] = legalize(t + 2);
      hull_next[q] = q;  // Mark q as removed from the hull.
      q = next_q;
    }

    // Walk backward below the start edge similarly.
    while (true) {
      const uint32_t prev_e = hull_prev[first];
      if (Cross(points[prev_e], points[first], p) >= 0) break;
      t = add_triangle(prev_e, static_cast<uint32_t>(i), first, kNone,
                       hull_tri[first], hull_tri[prev_e]);
      legalize(t + 2);
      hull_tri[prev_e] = t;
      hull_next[first] = first;  // Mark removed.
      first = prev_e;
    }

    // Update hull links and hashes.
    hull_prev[i] = first;
    hull_next[first] = static_cast<uint32_t>(i);
    hull_prev[q] = static_cast<uint32_t>(i);
    hull_next[i] = q;
    hull_start = first;
    hull_hash[hash_key(p)] = static_cast<int32_t>(i);
    hull_hash[hash_key(points[first])] = static_cast<int32_t>(first);
  }
  (void)hull_start;
}

std::vector<std::pair<uint32_t, uint32_t>> Delaunay::Edges() const {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  if (degenerate_) {
    for (size_t i = 0; i + 1 < degenerate_chain_.size(); ++i) {
      uint32_t u = degenerate_chain_[i];
      uint32_t v = degenerate_chain_[i + 1];
      if (u > v) std::swap(u, v);
      edges.emplace_back(u, v);
    }
    return edges;
  }
  edges.reserve(triangles_.size() / 2);
  for (size_t e = 0; e < triangles_.size(); ++e) {
    const int32_t twin = halfedges_[e];
    if (twin == kNone || static_cast<size_t>(twin) > e) {
      const size_t base = e - e % 3;
      uint32_t u = triangles_[e];
      uint32_t v = triangles_[base + (e + 1) % 3];
      if (u > v) std::swap(u, v);
      edges.emplace_back(u, v);
    }
  }
  return edges;
}

}  // namespace pdbscan::geometry
