// Wavefronts for unit-spherical emptiness checking (USEC) with line
// separation — Section 4.4 and Appendix A of the paper.
//
// Given the core points of a cell on one side of an axis-parallel line, the
// *wavefront* is the outer boundary of the union of their epsilon-radius
// disks on the other side of the line: the upper envelope of equal-radius
// circular caps. Appendix A proves that two such caps cross at most once,
// so the envelope has linearly many arcs and can be built by
// divide-and-conquer merging.
//
// A USEC connectivity query between two cells picks the separating line,
// takes one cell's wavefront, and asks whether any of the other cell's core
// points lies inside the wavefront; if so, the cells' bichromatic closest
// pair is within epsilon and the cells are connected in the cell graph.
//
// Coordinate frames: everything here is expressed in a canonical frame
// where the separating line is horizontal, the envelope's disks are centered
// at or below the line, and queries come from above. A cell needs two
// envelopes: one beyond its top border (identity frame) and one beyond its
// left border (frame (u, v) = (y, -x), a rotation that keeps circles
// circles).
//
// Substitution (documented in DESIGN.md): the paper merges wavefronts with
// balanced binary trees to get O(log^3 n) depth; we build each cell's
// envelope serially with the same divide-and-conquer merge and run cells'
// builds and queries in parallel. The produced wavefront is identical.
#ifndef PDBSCAN_GEOMETRY_WAVEFRONT_H_
#define PDBSCAN_GEOMETRY_WAVEFRONT_H_

#include <span>
#include <vector>

#include "geometry/point.h"

namespace pdbscan::geometry {

// One arc of the envelope: the circle centered at `center` is the topmost
// disk boundary for u in [lo, hi].
struct Arc {
  Point<2> center;
  double lo;
  double hi;
};

// Upper envelope of equal-radius disks (in the canonical frame).
class Envelope {
 public:
  Envelope() = default;

  // Builds the envelope of `radius`-disks around `centers` (any order;
  // sorted internally). Centers need not be distinct.
  Envelope(std::vector<Point<2>> centers, double radius);

  // True iff q is within `radius` of some center. Precondition: q.v is at
  // least every center's v (q lies on the far side of the separating line),
  // which the DBSCAN USEC dispatch guarantees.
  bool Contains(const Point<2>& q) const;

  const std::vector<Arc>& arcs() const { return arcs_; }
  double radius() const { return radius_; }
  bool empty() const { return arcs_.empty(); }

 private:
  std::vector<Arc> arcs_;  // Sorted by lo; disjoint; may have gaps.
  double radius_ = 0;
};

// Maps a point into the left-border frame: the envelope beyond a cell's left
// border is the top envelope of the rotated points.
inline Point<2> LeftFrame(const Point<2>& p) {
  return Point<2>{{p[1], -p[0]}};
}

}  // namespace pdbscan::geometry

#endif  // PDBSCAN_GEOMETRY_WAVEFRONT_H_
