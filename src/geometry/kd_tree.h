// Parallel k-d tree (Bentley [9]) over a set of D-dimensional points.
//
// Two roles in the paper:
//   * Section 5.1: a k-d tree over the *non-empty grid cells* answers
//     NeighborCells queries in higher dimensions, where enumerating all
//     (2·ceil(sqrt(d))+1)^d candidate cells is impractical.
//   * Section 7.2: the paper's own "parallel baseline" runs the original
//     DBSCAN with all points issuing parallel epsilon-range queries against
//     a k-d tree; our baselines reuse this tree.
//
// Construction recursively splits at the median of the widest dimension;
// sibling subtrees build in parallel (fork-join), matching the paper's
// parallel construction sketch. Queries are read-only and run in parallel.
#ifndef PDBSCAN_GEOMETRY_KD_TREE_H_
#define PDBSCAN_GEOMETRY_KD_TREE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "parallel/scheduler.h"

namespace pdbscan::geometry {

template <int D>
class KdTree {
 public:
  KdTree() = default;

  // Builds the tree over `points`. Indices reported by queries refer to
  // positions in this span. The span must outlive the tree.
  explicit KdTree(std::span<const Point<D>> points) { Build(points); }

  void Build(std::span<const Point<D>> points) {
    points_ = points;
    const size_t n = points.size();
    order_.resize(n);
    for (size_t i = 0; i < n; ++i) order_[i] = static_cast<uint32_t>(i);
    nodes_.clear();
    nodes_.reserve(n / kLeafSize * 4 + 4);
    if (n == 0) {
      root_ = -1;
      return;
    }
    root_ = BuildNode(0, n);
  }

  size_t size() const { return points_.size(); }

  // Calls visit(point_index) for every point within `radius` of `center`.
  // If visit returns false, the traversal stops early.
  template <typename Visit>
  void ForEachInBall(const Point<D>& center, double radius,
                     Visit&& visit) const {
    if (root_ < 0) return;
    VisitBall(root_, center, radius * radius, visit);
  }

  // Number of points within `radius` of `center`, stopping the count early
  // once it reaches `cap` (pass SIZE_MAX for an exact count).
  size_t CountInBall(const Point<D>& center, double radius,
                     size_t cap = SIZE_MAX) const {
    size_t count = 0;
    ForEachInBall(center, radius, [&](uint32_t) {
      ++count;
      return count < cap;
    });
    return count;
  }

  // Calls visit(point_index) for every point inside `box` (inclusive).
  // If visit returns false, the traversal stops early.
  template <typename Visit>
  void ForEachInBox(const BBox<D>& box, Visit&& visit) const {
    if (root_ < 0) return;
    VisitBox(root_, box, visit);
  }

 private:
  static constexpr size_t kLeafSize = 16;
  static constexpr size_t kParallelCutoff = 4096;

  struct Node {
    BBox<D> box;
    uint32_t begin = 0;
    uint32_t end = 0;       // Leaf iff end > begin.
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t BuildNode(size_t lo, size_t hi) {
    Node node;
    node.box = BBox<D>::Empty();
    for (size_t i = lo; i < hi; ++i) node.box.Extend(points_[order_[i]]);
    if (hi - lo <= kLeafSize) {
      node.begin = static_cast<uint32_t>(lo);
      node.end = static_cast<uint32_t>(hi);
      return Emplace(node);
    }
    // Split on the widest dimension at the median.
    int dim = 0;
    double widest = -1;
    for (int i = 0; i < D; ++i) {
      const double w = node.box.max[i] - node.box.min[i];
      if (w > widest) {
        widest = w;
        dim = i;
      }
    }
    const size_t mid = lo + (hi - lo) / 2;
    std::nth_element(order_.begin() + lo, order_.begin() + mid,
                     order_.begin() + hi, [&](uint32_t a, uint32_t b) {
                       return points_[a][dim] < points_[b][dim];
                     });
    int32_t left = -1, right = -1;
    if (hi - lo >= kParallelCutoff) {
      // Children build concurrently; Emplace is synchronized.
      parallel::fork_join([&]() { left = BuildNode(lo, mid); },
                          [&]() { right = BuildNode(mid, hi); });
    } else {
      left = BuildNode(lo, mid);
      right = BuildNode(mid, hi);
    }
    node.left = left;
    node.right = right;
    return Emplace(node);
  }

  int32_t Emplace(const Node& node) {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    nodes_.push_back(node);
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  template <typename Visit>
  bool VisitBall(int32_t id, const Point<D>& center, double r2,
                 Visit&& visit) const {
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (node.box.MinSquaredDistance(center) > r2) return true;
    if (node.end > node.begin) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t idx = order_[i];
        if (points_[idx].SquaredDistance(center) <= r2) {
          if (!visit(idx)) return false;
        }
      }
      return true;
    }
    if (!VisitBall(node.left, center, r2, visit)) return false;
    return VisitBall(node.right, center, r2, visit);
  }

  template <typename Visit>
  bool VisitBox(int32_t id, const BBox<D>& box, Visit&& visit) const {
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (node.box.MinSquaredDistance(box) > 0) return true;
    if (node.end > node.begin) {
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const uint32_t idx = order_[i];
        if (box.Contains(points_[idx])) {
          if (!visit(idx)) return false;
        }
      }
      return true;
    }
    if (!VisitBox(node.left, box, visit)) return false;
    return VisitBox(node.right, box, visit);
  }

  std::span<const Point<D>> points_;
  std::vector<uint32_t> order_;
  std::vector<Node> nodes_;
  std::mutex nodes_mu_;
  int32_t root_ = -1;
};

}  // namespace pdbscan::geometry

#endif  // PDBSCAN_GEOMETRY_KD_TREE_H_
