// Per-cell 2^d-ary quadtree for range counting — Section 5.2 of the paper.
//
// A grid cell of side epsilon/sqrt(d) is recursively divided into 2^d
// sub-cells. The tree supports:
//   * exact RangeCount(p, eps) with a cap for early termination (used when
//     marking core points, and with cap=1 as the quadtree-BCP connectivity
//     test of "our-exact-qt");
//   * approximate RangeCount(p, eps, rho) whose answer lies between the
//     number of points in the eps-ball and in the eps(1+rho)-ball (the
//     Gan–Tao approximate query driving "our-approx"/"our-approx-qt").
//
// Construction follows the paper: points are partitioned among children with
// a stable integer sort on the 2^d child keys, children build recursively in
// parallel, a leaf-size threshold bounds tree height, and single-child
// levels are collapsed so every internal node has at least two non-empty
// children. For the approximate tree, nodes stop dividing once their side
// length is at most rho * eps / sqrt(d) (depth 1 + ceil(log2(1/rho))); such
// "epsilon leaves" are counted wholesale when they intersect the query ball,
// which is what makes the query O(1 + (1/rho)^(d-1)).
#ifndef PDBSCAN_GEOMETRY_QUADTREE_H_
#define PDBSCAN_GEOMETRY_QUADTREE_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <span>
#include <vector>

#include "containers/flat_array.h"
#include "geometry/point.h"
#include "kernels/kernel_api.h"
#include "parallel/scheduler.h"
#include "primitives/integer_sort.h"

namespace pdbscan::geometry {

template <int D>
class CellQuadtree {
 public:
  CellQuadtree() = default;

  // Builds the tree over global `points`, restricted to the given `indices`
  // (taken by value; the tree owns and permutes them). `box` is the cell's
  // geometric bounding box. `max_level` caps subdivision depth: nodes at
  // max_level become epsilon-leaves (pass kNoDepthLimit for the exact tree).
  CellQuadtree(std::span<const Point<D>> points, std::vector<uint32_t> indices,
               const BBox<D>& box, int max_level = kNoDepthLimit,
               size_t leaf_threshold = kDefaultLeafThreshold)
      : points_(points),
        order_(std::move(indices)),
        max_level_(max_level),
        leaf_threshold_(leaf_threshold) {
    nodes_.reserve(order_.size() / leaf_threshold_ * 2 + 2);
    if (!order_.empty()) {
      root_ = BuildNode(0, order_.size(), box, 0);
      BuildLanes();
    }
  }

  static constexpr int kNoDepthLimit = std::numeric_limits<int>::max();
  static constexpr size_t kDefaultLeafThreshold = 16;

  // Depth limit for the approximate tree over a DBSCAN grid cell (diameter
  // exactly eps): the box halves each level and an epsilon-leaf must have
  // diameter at most rho * eps, giving ceil(log2(1/rho)) levels — the
  // 1 + ceil(log2(1/rho)) tree height of Section 5.2 (they count the root).
  static int ApproxMaxLevel(double rho) {
    if (rho >= 1) return 0;
    return static_cast<int>(std::ceil(std::log2(1.0 / rho)));
  }

  // General form for a box of the given diameter: levels until the diameter
  // shrinks to rho * eps.
  static int ApproxMaxLevelFor(double diameter, double eps, double rho) {
    const double target = rho * eps;
    if (diameter <= target) return 0;
    return static_cast<int>(std::ceil(std::log2(diameter / target)));
  }

  bool empty() const { return root_ < 0; }
  size_t num_points() const { return order_.size(); }
  size_t num_nodes() const { return nodes_.size(); }

  // Exact count of points within `radius` of `center`, stopping early once
  // the count reaches `cap`. Leaf scans run through the dispatched distance
  // kernel (src/kernels/) over the tree's SoA lanes; `counters` (optional)
  // collects kernel observability counters.
  size_t CountInBall(const Point<D>& center, double radius,
                     size_t cap = SIZE_MAX,
                     kernels::Counters* counters = nullptr) const {
    if (root_ < 0 || cap == 0) return 0;
    return CountExact(root_, center, radius * radius, cap, counters);
  }

  // True iff some point lies within `radius` of `center`.
  bool ContainsInBall(const Point<D>& center, double radius,
                      kernels::Counters* counters = nullptr) const {
    return CountInBall(center, radius, 1, counters) > 0;
  }

  // Approximate count: a value between |B(center, radius)| and
  // |B(center, radius * (1 + rho))|, capped at `cap`.
  size_t ApproxCountInBall(const Point<D>& center, double radius, double rho,
                           size_t cap = SIZE_MAX,
                           kernels::Counters* counters = nullptr) const {
    if (root_ < 0 || cap == 0) return 0;
    const double r2 = radius * radius;
    const double r2_outer = radius * (1 + rho) * radius * (1 + rho);
    return CountApprox(root_, center, radius, r2, r2_outer, cap, counters);
  }

  // True iff the approximate count is non-zero: guaranteed true when a point
  // lies within `radius`, guaranteed false when no point lies within
  // `radius * (1 + rho)`, and either answer in between.
  bool ApproxContainsInBall(const Point<D>& center, double radius, double rho,
                            kernels::Counters* counters = nullptr) const {
    return ApproxCountInBall(center, radius, rho, 1, counters) > 0;
  }

 private:
  struct Node {
    BBox<D> box;
    uint32_t begin = 0;
    uint32_t end = 0;
    uint32_t count = 0;
    std::vector<int32_t> children;  // Empty for leaves.
    bool epsilon_leaf = false;      // Leaf due to the depth cap.
  };

  static constexpr size_t kParallelBuildCutoff = 4096;
  static constexpr size_t kNumChildSlots = size_t{1} << D;
  // Hard cap: with duplicate (or nearly-coincident) points no subdivision
  // can separate them; beyond ~60 halvings the boxes are degenerate anyway.
  static constexpr int kHardDepthCap = 60;

  int32_t BuildNode(size_t lo, size_t hi, BBox<D> box, int level) {
    Node node;
    node.begin = static_cast<uint32_t>(lo);
    node.end = static_cast<uint32_t>(hi);
    node.count = static_cast<uint32_t>(hi - lo);
    const size_t n = hi - lo;

    // Collapse levels where all points fall into one sub-cell, so that every
    // internal node has at least two non-empty children.
    std::vector<size_t> counts;
    while (true) {
      if (n <= leaf_threshold_ || level >= max_level_ ||
          level >= kHardDepthCap) {
        node.box = box;
        node.epsilon_leaf = level >= max_level_;
        return Emplace(std::move(node));
      }
      counts.assign(kNumChildSlots, 0);
      for (size_t i = lo; i < hi; ++i) {
        ++counts[ChildKey(points_[order_[i]], box)];
      }
      size_t non_empty = 0;
      size_t only = 0;
      for (size_t k = 0; k < kNumChildSlots; ++k) {
        if (counts[k] > 0) {
          ++non_empty;
          only = k;
        }
      }
      if (non_empty >= 2) break;
      box = ChildBox(box, only);
      ++level;
    }
    node.box = box;

    // Stable integer sort on child keys groups each child's points.
    auto key_of = [&](uint32_t idx) { return ChildKey(points_[idx], box); };
    primitives::IntegerSort(
        std::span<uint32_t>(order_.data() + lo, hi - lo), kNumChildSlots,
        key_of);

    // Child ranges from the counts, then recurse (in parallel when large).
    struct ChildRange {
      size_t key, lo, hi;
    };
    std::vector<ChildRange> ranges;
    size_t offset = lo;
    for (size_t k = 0; k < kNumChildSlots; ++k) {
      if (counts[k] == 0) continue;
      ranges.push_back({k, offset, offset + counts[k]});
      offset += counts[k];
    }
    std::vector<int32_t> children(ranges.size());
    auto build_child = [&](size_t c) {
      children[c] = BuildNode(ranges[c].lo, ranges[c].hi,
                              ChildBox(box, ranges[c].key), level + 1);
    };
    if (n >= kParallelBuildCutoff) {
      parallel::parallel_for(0, ranges.size(), build_child, 1);
    } else {
      for (size_t c = 0; c < ranges.size(); ++c) build_child(c);
    }
    node.children = std::move(children);
    return Emplace(std::move(node));
  }

  size_t ChildKey(const Point<D>& p, const BBox<D>& box) const {
    size_t key = 0;
    for (int i = 0; i < D; ++i) {
      const double mid = 0.5 * (box.min[i] + box.max[i]);
      key = (key << 1) | (p[i] >= mid ? 1 : 0);
    }
    return key;
  }

  static BBox<D> ChildBox(const BBox<D>& box, size_t key) {
    BBox<D> child;
    for (int i = 0; i < D; ++i) {
      const double mid = 0.5 * (box.min[i] + box.max[i]);
      const bool high = (key >> (D - 1 - i)) & 1;
      child.min[i] = high ? mid : box.min[i];
      child.max[i] = high ? box.max[i] : mid;
    }
    return child;
  }

  int32_t Emplace(Node&& node) {
    std::lock_guard<std::mutex> lock(nodes_mu_);
    nodes_.push_back(std::move(node));
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  // Materializes SoA coordinate lanes in `order_` order (leaf ranges become
  // contiguous per-dimension runs), so leaf scans vector-load instead of
  // gathering through the permutation. Built once, after BuildNode froze
  // the permutation.
  void BuildLanes() {
    const size_t n = order_.size();
    std::array<double*, D> dst;
    for (int d = 0; d < D; ++d) {
      dst[static_cast<size_t>(d)] =
          lanes_[static_cast<size_t>(d)].AllocateAligned(n);
    }
    for (size_t i = 0; i < n; ++i) {
      const Point<D>& p = points_[order_[i]];
      for (int d = 0; d < D; ++d) dst[static_cast<size_t>(d)][i] = p[d];
    }
  }

  // Kernel scan of a leaf's [begin, end) lane range; bit-identical to the
  // scalar loop over points_[order_[i]] it replaces (same point order, same
  // per-point arithmetic, same min(count, cap) saturation).
  size_t ScanLeaf(uint32_t begin, uint32_t end, const Point<D>& center,
                  double r2, size_t cap, kernels::Counters* counters) const {
    std::array<const double*, D> lanes;
    for (int d = 0; d < D; ++d) {
      lanes[static_cast<size_t>(d)] =
          lanes_[static_cast<size_t>(d)].data() + begin;
    }
    return kernels::Ops().count_within(lanes.data(), 1, D, end - begin,
                                       center.x.data(), r2, cap, counters);
  }

  size_t CountExact(int32_t id, const Point<D>& center, double r2, size_t cap,
                    kernels::Counters* counters) const {
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (node.box.MinSquaredDistance(center) > r2) return 0;
    if (node.box.MaxSquaredDistance(center) <= r2) {
      return node.count < cap ? node.count : cap;
    }
    if (node.children.empty()) {
      return ScanLeaf(node.begin, node.end, center, r2, cap, counters);
    }
    size_t count = 0;
    for (int32_t child : node.children) {
      count += CountExact(child, center, r2, cap - count, counters);
      if (count >= cap) return cap;
    }
    return count;
  }

  size_t CountApprox(int32_t id, const Point<D>& center, double radius,
                     double r2, double r2_outer, size_t cap,
                     kernels::Counters* counters) const {
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (node.box.MinSquaredDistance(center) > r2) return 0;
    if (node.box.MaxSquaredDistance(center) <= r2_outer) {
      return node.count < cap ? node.count : cap;
    }
    if (node.children.empty()) {
      if (node.epsilon_leaf) {
        // Depth-capped leaf intersecting the eps-ball: its diameter is at
        // most rho * eps, so all its points are within eps * (1 + rho).
        return node.count < cap ? node.count : cap;
      }
      return ScanLeaf(node.begin, node.end, center, r2, cap, counters);
    }
    size_t count = 0;
    for (int32_t child : node.children) {
      count += CountApprox(child, center, radius, r2, r2_outer, cap - count,
                           counters);
      if (count >= cap) return cap;
    }
    return count;
  }

  std::span<const Point<D>> points_;
  std::vector<uint32_t> order_;
  std::array<containers::FlatArray<double>, D> lanes_;
  std::vector<Node> nodes_;
  std::mutex nodes_mu_;
  int max_level_ = kNoDepthLimit;
  size_t leaf_threshold_ = kDefaultLeafThreshold;
  int32_t root_ = -1;
};

}  // namespace pdbscan::geometry

#endif  // PDBSCAN_GEOMETRY_QUADTREE_H_
