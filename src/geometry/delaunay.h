// 2D Delaunay triangulation for the Delaunay-based cell graph (Section 4.4).
//
// Gan & Tao [40] and de Berg et al. [35] show that if the bichromatic
// closest pair between two core cells is within epsilon, the Delaunay
// triangulation of the core points contains an edge of length at most
// epsilon whose endpoints lie in cells that connect the two cells'
// components; filtering DT edges therefore yields a correct cell graph.
//
// The paper uses the parallel randomized incremental DT from PBBS [10, 77].
// Substitution (documented in DESIGN.md): we implement the sweep-circle /
// advancing-hull incremental algorithm (the "delaunator" construction):
// points are inserted in order of distance from a seed circumcenter, each
// insertion attaches to the visible part of the convex hull and is legalized
// with in-circle flips. O(n log n) expected work; construction is serial,
// and the DBSCAN edge filtering on top of it is parallel.
//
// Robustness: predicates use long double arithmetic. Callers may request a
// deterministic pre-jitter to break exact degeneracies (collinear /
// cocircular inputs); the jitter only perturbs the topology computation —
// DBSCAN filters edges by distances between the *original* coordinates.
#ifndef PDBSCAN_GEOMETRY_DELAUNAY_H_
#define PDBSCAN_GEOMETRY_DELAUNAY_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geometry/point.h"

namespace pdbscan::geometry {

class Delaunay {
 public:
  // Triangulates `points`. If `jitter_seed` is non-zero, coordinates are
  // deterministically perturbed by ~1e-9 of the bounding-box diagonal before
  // triangulating (the returned topology refers to original point indices).
  explicit Delaunay(std::span<const Point<2>> points, uint64_t jitter_seed = 0);

  // Vertex indices, 3 per triangle, in counterclockwise order.
  const std::vector<uint32_t>& triangles() const { return triangles_; }

  // halfedges()[e] is the opposite halfedge of e, or -1 on the hull.
  const std::vector<int32_t>& halfedges() const { return halfedges_; }

  // True when all input points were collinear (no triangles exist); Edges()
  // then returns the chain between coordinate-sorted neighbors, which is the
  // degenerate Delaunay graph and preserves the DBSCAN connectivity
  // argument.
  bool degenerate() const { return degenerate_; }

  // Unique undirected edges of the Delaunay graph (u < v pairs).
  std::vector<std::pair<uint32_t, uint32_t>> Edges() const;

  size_t num_triangles() const { return triangles_.size() / 3; }

 private:
  void Build(std::span<const Point<2>> points);

  std::vector<uint32_t> triangles_;
  std::vector<int32_t> halfedges_;
  std::vector<uint32_t> degenerate_chain_;  // Sorted order when degenerate.
  bool degenerate_ = false;
};

}  // namespace pdbscan::geometry

#endif  // PDBSCAN_GEOMETRY_DELAUNAY_H_
