#include "geometry/wavefront.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pdbscan::geometry {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Height of the upper cap of the radius-r circle centered at c, at
// horizontal coordinate u; -inf outside the circle's u-extent.
double CapHeight(const Point<2>& c, double r, double u) {
  const double dx = u - c[0];
  const double under = r * r - dx * dx;
  if (under < 0) return kNegInf;
  return c[1] + std::sqrt(under);
}

double ArcHeight(const Arc& a, double r, double u) {
  return CapHeight(a.center, r, u);
}

// Appends the piece [lo, hi] of circle `center` to `out`, coalescing with a
// preceding piece of the same circle.
void AppendArc(std::vector<Arc>& out, const Point<2>& center, double lo,
               double hi) {
  if (!(lo < hi)) return;
  if (!out.empty() && out.back().center == center &&
      out.back().hi >= lo - 1e-12 * (1 + std::abs(lo))) {
    out.back().hi = hi;
    return;
  }
  out.push_back(Arc{center, lo, hi});
}

// Merges two envelopes (each a sorted list of disjoint arcs, possibly with
// gaps) into their upper envelope. Relies on the single-crossing property of
// equal-radius caps (Appendix A of the paper): within any interval where two
// arcs are both defined, their height difference changes sign at most once.
std::vector<Arc> MergeEnvelopes(const std::vector<Arc>& e1,
                                const std::vector<Arc>& e2, double r) {
  std::vector<Arc> out;
  out.reserve(e1.size() + e2.size());

  // Sweep over all arc boundaries.
  std::vector<double> events;
  events.reserve(2 * (e1.size() + e2.size()));
  for (const Arc& a : e1) {
    events.push_back(a.lo);
    events.push_back(a.hi);
  }
  for (const Arc& a : e2) {
    events.push_back(a.lo);
    events.push_back(a.hi);
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  size_t i1 = 0, i2 = 0;
  for (size_t ev = 0; ev + 1 < events.size(); ++ev) {
    const double s = events[ev];
    const double e = events[ev + 1];
    // Advance past arcs that end at or before s.
    while (i1 < e1.size() && e1[i1].hi <= s) ++i1;
    while (i2 < e2.size() && e2[i2].hi <= s) ++i2;
    const Arc* a1 =
        (i1 < e1.size() && e1[i1].lo <= s && e1[i1].hi >= e) ? &e1[i1] : nullptr;
    const Arc* a2 =
        (i2 < e2.size() && e2[i2].lo <= s && e2[i2].hi >= e) ? &e2[i2] : nullptr;
    if (a1 == nullptr && a2 == nullptr) continue;
    if (a1 == nullptr) {
      AppendArc(out, a2->center, s, e);
      continue;
    }
    if (a2 == nullptr) {
      AppendArc(out, a1->center, s, e);
      continue;
    }
    const double d_s = ArcHeight(*a1, r, s) - ArcHeight(*a2, r, s);
    const double d_e = ArcHeight(*a1, r, e) - ArcHeight(*a2, r, e);
    if (d_s >= 0 && d_e >= 0) {
      AppendArc(out, a1->center, s, e);
      continue;
    }
    if (d_s <= 0 && d_e <= 0) {
      AppendArc(out, a2->center, s, e);
      continue;
    }
    // Exactly one crossing in (s, e): bisect the height difference.
    double lo = s, hi = e;
    for (int iter = 0; iter < 64 && hi - lo > 0; ++iter) {
      const double mid = 0.5 * (lo + hi);
      const double d = ArcHeight(*a1, r, mid) - ArcHeight(*a2, r, mid);
      if ((d >= 0) == (d_s >= 0)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const double cross = 0.5 * (lo + hi);
    const Arc* left_winner = d_s >= 0 ? a1 : a2;
    const Arc* right_winner = d_s >= 0 ? a2 : a1;
    AppendArc(out, left_winner->center, s, cross);
    AppendArc(out, right_winner->center, cross, e);
  }
  return out;
}

std::vector<Arc> BuildRecursive(std::span<const Point<2>> centers, double r) {
  if (centers.size() == 1) {
    return {Arc{centers[0], centers[0][0] - r, centers[0][0] + r}};
  }
  const size_t mid = centers.size() / 2;
  // Serial recursion: per-cell point counts are small; parallelism comes
  // from running many cells' builds and queries concurrently.
  std::vector<Arc> left = BuildRecursive(centers.subspan(0, mid), r);
  std::vector<Arc> right = BuildRecursive(centers.subspan(mid), r);
  return MergeEnvelopes(left, right, r);
}

}  // namespace

Envelope::Envelope(std::vector<Point<2>> centers, double radius)
    : radius_(radius) {
  if (centers.empty()) return;
  std::sort(centers.begin(), centers.end(),
            [](const Point<2>& a, const Point<2>& b) {
              if (a[0] != b[0]) return a[0] < b[0];
              return a[1] < b[1];
            });
  arcs_ = BuildRecursive(std::span<const Point<2>>(centers), radius);
}

bool Envelope::Contains(const Point<2>& q) const {
  if (arcs_.empty()) return false;
  // Find the last arc with lo <= q.u and check it covers q.u.
  const double u = q[0];
  size_t lo = 0, hi = arcs_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (arcs_[mid].lo <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return false;
  const Arc& arc = arcs_[lo - 1];
  if (u > arc.hi) return false;
  return q.SquaredDistance(arc.center) <= radius_ * radius_;
}

}  // namespace pdbscan::geometry
