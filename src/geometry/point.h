// Points, bounding boxes and grid-cell coordinates in D dimensions.
//
// D is a compile-time parameter: distance loops unroll and cell coordinates
// are fixed-size integer tuples. The library instantiates the dimensions
// exercised by the paper's evaluation (2, 3, 5, 7, 13) plus 4 for
// generality tests; see pdbscan/pdbscan.h for the runtime dispatch.
#ifndef PDBSCAN_GEOMETRY_POINT_H_
#define PDBSCAN_GEOMETRY_POINT_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "primitives/random.h"

namespace pdbscan::geometry {

template <int D>
struct Point {
  static_assert(D >= 1, "dimension must be positive");
  std::array<double, D> x;

  double& operator[](int i) { return x[static_cast<size_t>(i)]; }
  double operator[](int i) const { return x[static_cast<size_t>(i)]; }

  bool operator==(const Point& o) const { return x == o.x; }

  double SquaredDistance(const Point& o) const {
    double d2 = 0;
    for (int i = 0; i < D; ++i) {
      const double d = x[static_cast<size_t>(i)] - o.x[static_cast<size_t>(i)];
      d2 += d * d;
    }
    return d2;
  }

  double Distance(const Point& o) const { return std::sqrt(SquaredDistance(o)); }

  // L1 (Manhattan) distance, accumulated in dimension order — the scalar
  // reference the SIMD L1 kernels must match bit for bit.
  double L1Distance(const Point& o) const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      s += std::abs(x[static_cast<size_t>(i)] - o.x[static_cast<size_t>(i)]);
    }
    return s;
  }

  // L-infinity (Chebyshev) distance: the largest per-axis difference.
  double LinfDistance(const Point& o) const {
    double m = 0;
    for (int i = 0; i < D; ++i) {
      const double d =
          std::abs(x[static_cast<size_t>(i)] - o.x[static_cast<size_t>(i)]);
      if (d > m) m = d;
    }
    return m;
  }
};

// Integer grid-cell coordinates (the cell a point falls into when space is
// partitioned into cells of side epsilon / sqrt(D), Section 3 of the paper).
// 64-bit: small epsilon relative to the data extent produces very large
// coordinate magnitudes.
template <int D>
using CellCoords = std::array<int64_t, D>;

template <int D>
uint64_t HashCellCoords(const CellCoords<D>& c) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < D; ++i) {
    h = primitives::HashCombine64(
        h, static_cast<uint64_t>(c[static_cast<size_t>(i)]));
  }
  return h;
}

// Axis-aligned bounding box.
template <int D>
struct BBox {
  Point<D> min;
  Point<D> max;

  static BBox Empty() {
    BBox b;
    for (int i = 0; i < D; ++i) {
      b.min[i] = std::numeric_limits<double>::infinity();
      b.max[i] = -std::numeric_limits<double>::infinity();
    }
    return b;
  }

  void Extend(const Point<D>& p) {
    for (int i = 0; i < D; ++i) {
      if (p[i] < min[i]) min[i] = p[i];
      if (p[i] > max[i]) max[i] = p[i];
    }
  }

  void Extend(const BBox& o) {
    for (int i = 0; i < D; ++i) {
      if (o.min[i] < min[i]) min[i] = o.min[i];
      if (o.max[i] > max[i]) max[i] = o.max[i];
    }
  }

  bool Contains(const Point<D>& p) const {
    for (int i = 0; i < D; ++i) {
      if (p[i] < min[i] || p[i] > max[i]) return false;
    }
    return true;
  }

  // Smallest squared distance from p to any point of the box (0 if inside).
  double MinSquaredDistance(const Point<D>& p) const {
    double d2 = 0;
    for (int i = 0; i < D; ++i) {
      double d = 0;
      if (p[i] < min[i]) {
        d = min[i] - p[i];
      } else if (p[i] > max[i]) {
        d = p[i] - max[i];
      }
      d2 += d * d;
    }
    return d2;
  }

  // Largest squared distance from p to any point of the box.
  double MaxSquaredDistance(const Point<D>& p) const {
    double d2 = 0;
    for (int i = 0; i < D; ++i) {
      const double lo = p[i] - min[i];
      const double hi = max[i] - p[i];
      const double d = std::abs(lo) > std::abs(hi) ? lo : hi;
      d2 += d * d;
    }
    return d2;
  }

  // Smallest L1 distance from p to any point of the box (0 if inside).
  double MinL1Distance(const Point<D>& p) const {
    double s = 0;
    for (int i = 0; i < D; ++i) {
      if (p[i] < min[i]) {
        s += min[i] - p[i];
      } else if (p[i] > max[i]) {
        s += p[i] - max[i];
      }
    }
    return s;
  }

  // Smallest L-infinity distance from p to any point of the box (0 if inside).
  double MinLinfDistance(const Point<D>& p) const {
    double m = 0;
    for (int i = 0; i < D; ++i) {
      double d = 0;
      if (p[i] < min[i]) {
        d = min[i] - p[i];
      } else if (p[i] > max[i]) {
        d = p[i] - max[i];
      }
      if (d > m) m = d;
    }
    return m;
  }

  // Smallest squared distance between any point of this box and any point of
  // the other box (0 if they intersect).
  double MinSquaredDistance(const BBox& o) const {
    double d2 = 0;
    for (int i = 0; i < D; ++i) {
      double d = 0;
      if (o.max[i] < min[i]) {
        d = min[i] - o.max[i];
      } else if (o.min[i] > max[i]) {
        d = o.min[i] - max[i];
      }
      d2 += d * d;
    }
    return d2;
  }
};

// Computes the bounding box of a point range.
template <int D>
BBox<D> ComputeBBox(const Point<D>* points, size_t n) {
  BBox<D> box = BBox<D>::Empty();
  for (size_t i = 0; i < n; ++i) box.Extend(points[i]);
  return box;
}

// The grid cell containing p, for a grid anchored at `origin` with cells of
// side `side`.
template <int D>
CellCoords<D> CellOf(const Point<D>& p, const Point<D>& origin, double side) {
  CellCoords<D> c;
  for (int i = 0; i < D; ++i) {
    c[static_cast<size_t>(i)] =
        static_cast<int64_t>(std::floor((p[i] - origin[i]) / side));
  }
  return c;
}

// Geometric bounding box of a grid cell. Both bounds are computed as
// origin + side * coordinate so that adjacent cells share *bit-identical*
// boundary values — the USEC separating-line dispatch relies on exact
// comparisons between neighboring boxes.
template <int D>
BBox<D> CellBBox(const CellCoords<D>& c, const Point<D>& origin, double side) {
  BBox<D> box;
  for (int i = 0; i < D; ++i) {
    box.min[i] = origin[i] + side * static_cast<double>(c[static_cast<size_t>(i)]);
    box.max[i] = origin[i] + side * static_cast<double>(c[static_cast<size_t>(i)] + 1);
  }
  return box;
}

}  // namespace pdbscan::geometry

#endif  // PDBSCAN_GEOMETRY_POINT_H_
