#include "util/env.h"

#include <cstdlib>

namespace pdbscan::util {

int GetEnvInt(const char* name, int default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value) return default_value;
  return static_cast<int>(parsed);
}

double GetEnvDouble(const char* name, double default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return default_value;
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  return value;
}

}  // namespace pdbscan::util
