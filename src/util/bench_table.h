// Fixed-width table + CSV output for the benchmark harnesses. Each bench
// binary reproduces one table or figure of the paper and prints the same
// rows/series the paper reports.
#ifndef PDBSCAN_UTIL_BENCH_TABLE_H_
#define PDBSCAN_UTIL_BENCH_TABLE_H_

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pdbscan::util {

// Collects rows of string cells and prints them as an aligned table.
class BenchTable {
 public:
  explicit BenchTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Formats a double with a sensible precision for timing tables.
  static std::string Num(double v, int precision = 4) {
    std::ostringstream out;
    out << std::setprecision(precision) << v;
    return out.str();
  }

  void Print(std::ostream& out = std::cout) const {
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
            << row[c];
      }
      out << '\n';
    };
    print_row(header_);
    size_t total = 0;
    for (const size_t w : widths) total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
    out.flush();
  }

  // Also emits machine-readable CSV (one line per row) prefixed with '#csv'.
  void PrintCsv(std::ostream& out = std::cout) const {
    auto csv_row = [&](const std::vector<std::string>& row) {
      out << "#csv ";
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out << ',';
        out << row[c];
      }
      out << '\n';
    };
    csv_row(header_);
    for (const auto& row : rows_) csv_row(row);
    out.flush();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdbscan::util

#endif  // PDBSCAN_UTIL_BENCH_TABLE_H_
