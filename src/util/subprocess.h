// Minimal fork/exec helpers for the multi-process serving tests and
// bench/throughput_remote: spawn a real child process (pdbscan_server),
// discover its ephemeral port through a port file, and kill it — politely
// (SIGTERM) or mid-flight (SIGKILL, the fault-injection path).
#ifndef PDBSCAN_UTIL_SUBPROCESS_H_
#define PDBSCAN_UTIL_SUBPROCESS_H_

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace pdbscan::util {

class ChildProcess {
 public:
  ChildProcess() = default;
  explicit ChildProcess(pid_t pid) : pid_(pid) {}
  ChildProcess(ChildProcess&& other) noexcept : pid_(other.pid_) {
    other.pid_ = -1;
  }
  ChildProcess& operator=(ChildProcess&& other) noexcept {
    if (this != &other) {
      KillAndWait(SIGKILL);
      pid_ = other.pid_;
      other.pid_ = -1;
    }
    return *this;
  }
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;
  ~ChildProcess() { KillAndWait(SIGKILL); }

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  void Kill(int sig) {
    if (pid_ > 0) ::kill(pid_, sig);
  }

  // Waits for exit; returns the raw waitpid status (use WIFEXITED /
  // WEXITSTATUS / WTERMSIG on it). -1 when there was no child.
  int Wait() {
    if (pid_ <= 0) return -1;
    int status = -1;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    pid_ = -1;
    return status;
  }

  int KillAndWait(int sig) {
    if (pid_ <= 0) return -1;
    Kill(sig);
    return Wait();
  }

 private:
  pid_t pid_ = -1;
};

// fork + execv. argv[0] is the binary path. Throws std::runtime_error if
// the fork fails; a failed exec exits the child with 127 (surfaces in
// Wait()).
inline ChildProcess SpawnProcess(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    std::perror("execv");
    _exit(127);
  }
  return ChildProcess(pid);
}

// Polls for `path` to appear and contain a port number (the server writes
// it atomically). Throws std::runtime_error on timeout.
inline uint16_t ReadPortFile(const std::string& path,
                             uint64_t timeout_millis = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_millis);
  for (;;) {
    if (std::FILE* f = std::fopen(path.c_str(), "r")) {
      unsigned port = 0;
      const int got = std::fscanf(f, "%u", &port);
      std::fclose(f);
      if (got == 1 && port > 0 && port < 65536) {
        return static_cast<uint16_t>(port);
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("timed out waiting for port file " + path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace pdbscan::util

#endif  // PDBSCAN_UTIL_SUBPROCESS_H_
