// Small helpers for reading configuration from environment variables.
#ifndef PDBSCAN_UTIL_ENV_H_
#define PDBSCAN_UTIL_ENV_H_

#include <string>

namespace pdbscan::util {

// Returns the integer value of environment variable `name`, or
// `default_value` if unset or unparsable.
int GetEnvInt(const char* name, int default_value);

// Returns the double value of environment variable `name`, or
// `default_value` if unset or unparsable.
double GetEnvDouble(const char* name, double default_value);

// Returns the string value of environment variable `name`, or
// `default_value` if unset.
std::string GetEnvString(const char* name, const std::string& default_value);

}  // namespace pdbscan::util

#endif  // PDBSCAN_UTIL_ENV_H_
