// Wall-clock timer used by benchmarks and examples.
#ifndef PDBSCAN_UTIL_TIMER_H_
#define PDBSCAN_UTIL_TIMER_H_

#include <chrono>

namespace pdbscan::util {

// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Resets the start time to now.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pdbscan::util

#endif  // PDBSCAN_UTIL_TIMER_H_
