// In-library clustering-quality metrics: agreement between two label
// vectors (a clustering under evaluation vs. a reference / ground truth),
// computed exactly from the pair-counting contingency table.
//
// Conventions, chosen so the numbers line up with the scikit-learn
// implementations the community compares against:
//
//   * Labels are arbitrary int64 values; only the induced partition
//     matters. Noise (Clustering::kNoise == -1) is treated as one ordinary
//     label — noise points form their own "cluster" for agreement purposes,
//     so a run that noise-flags half the dataset scores against a truth
//     that clusters those points. (This matches passing DBSCAN output to
//     sklearn.metrics.adjusted_rand_score unmodified.)
//   * AdjustedRandIndex: Hubert-Arabie ARI from the pair-counting
//     contingency table; 1.0 for identical partitions, ~0 for independent
//     ones, negative for worse-than-chance. The degenerate case where the
//     expected index equals the maximum index (both partitions trivial)
//     returns 1.0, as in scikit-learn.
//   * NormalizedMutualInfo: MI normalized by the arithmetic mean of the two
//     entropies (scikit-learn's default average_method="arithmetic");
//     natural logarithms throughout; 1.0 when both partitions are the same
//     single cluster, 0.0 when either side carries no information.
//
// Everything here is deterministic, single-threaded (metric evaluation is
// O(n) hashing plus O(#cells) arithmetic — never the bottleneck next to the
// clustering it grades) and header-only.
#ifndef PDBSCAN_QUALITY_METRICS_H_
#define PDBSCAN_QUALITY_METRICS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbscan/types.h"

namespace pdbscan::quality {

// FNV-1a over the little-endian bytes of the label vector. This is the
// checksum the golden-label tests pin per mode x metric: any label flip,
// reorder, or resize changes it.
inline uint64_t LabelChecksum(std::span<const int64_t> labels) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis.
  for (const int64_t label : labels) {
    uint64_t w = static_cast<uint64_t>(label);
    for (int b = 0; b < 8; ++b) {
      h = (h ^ (w & 0xffu)) * 1099511628211ull;  // FNV prime.
      w >>= 8;
    }
  }
  return h;
}

inline uint64_t LabelChecksum(const std::vector<int64_t>& labels) {
  return LabelChecksum(std::span<const int64_t>(labels));
}

// Fraction of points labeled Clustering::kNoise.
inline double NoiseRatio(std::span<const int64_t> labels) {
  if (labels.empty()) return 0.0;
  size_t noise = 0;
  for (const int64_t label : labels) {
    if (label == Clustering::kNoise) ++noise;
  }
  return static_cast<double>(noise) / static_cast<double>(labels.size());
}

// Log2-bucketed sizes of the non-noise clusters: histogram[k] counts the
// clusters whose size lies in [2^k, 2^(k+1)). Compact enough to embed in a
// bench record yet detailed enough to catch "one giant blob vs. many
// shards" regressions that ARI alone can miss when the truth is unknown.
inline std::vector<size_t> ClusterSizeHistogram(
    std::span<const int64_t> labels) {
  std::unordered_map<int64_t, size_t> sizes;
  for (const int64_t label : labels) {
    if (label != Clustering::kNoise) ++sizes[label];
  }
  std::vector<size_t> histogram;
  for (const auto& [label, size] : sizes) {
    size_t bucket = 0;
    while ((size_t{1} << (bucket + 1)) <= size) ++bucket;
    if (histogram.size() <= bucket) histogram.resize(bucket + 1, 0);
    ++histogram[bucket];
  }
  return histogram;
}

namespace internal {

// Dense contingency table of two equal-length label vectors: cells[r][c]
// counts points with (a-label r, b-label c) after remapping each side's
// distinct labels (noise included) to 0..k-1 in first-appearance order.
struct Contingency {
  std::vector<std::vector<size_t>> cells;
  std::vector<size_t> row_sums;  // Per distinct a-label.
  std::vector<size_t> col_sums;  // Per distinct b-label.
  size_t n = 0;
};

inline Contingency BuildContingency(std::span<const int64_t> a,
                                    std::span<const int64_t> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(
        "quality metrics need equal-length label vectors (" +
        std::to_string(a.size()) + " vs " + std::to_string(b.size()) + ")");
  }
  Contingency t;
  t.n = a.size();
  std::unordered_map<int64_t, size_t> a_id;
  std::unordered_map<int64_t, size_t> b_id;
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(t.n);
  for (size_t i = 0; i < t.n; ++i) {
    const size_t r = a_id.emplace(a[i], a_id.size()).first->second;
    const size_t c = b_id.emplace(b[i], b_id.size()).first->second;
    pairs.emplace_back(r, c);
  }
  t.cells.assign(a_id.size(), std::vector<size_t>(b_id.size(), 0));
  t.row_sums.assign(a_id.size(), 0);
  t.col_sums.assign(b_id.size(), 0);
  for (const auto& [r, c] : pairs) {
    ++t.cells[r][c];
    ++t.row_sums[r];
    ++t.col_sums[c];
  }
  return t;
}

// n choose 2 in double precision (exact for n < 2^26, far beyond any
// label-vector size the harness grades).
inline double Pairs(size_t n) {
  return 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
}

}  // namespace internal

// Hubert-Arabie adjusted Rand index of the partitions induced by `a` and
// `b`. Symmetric; 1.0 iff the partitions are identical.
inline double AdjustedRandIndex(std::span<const int64_t> a,
                                std::span<const int64_t> b) {
  const internal::Contingency t = internal::BuildContingency(a, b);
  if (t.n <= 1) return 1.0;
  double sum_cells = 0;
  for (const auto& row : t.cells) {
    for (const size_t cell : row) sum_cells += internal::Pairs(cell);
  }
  double sum_rows = 0;
  for (const size_t s : t.row_sums) sum_rows += internal::Pairs(s);
  double sum_cols = 0;
  for (const size_t s : t.col_sums) sum_cols += internal::Pairs(s);
  const double expected = sum_rows * sum_cols / internal::Pairs(t.n);
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // Both partitions trivial.
  return (sum_cells - expected) / (max_index - expected);
}

// Mutual information of the two partitions, in nats.
inline double MutualInfo(std::span<const int64_t> a,
                         std::span<const int64_t> b) {
  const internal::Contingency t = internal::BuildContingency(a, b);
  if (t.n == 0) return 0.0;
  const double n = static_cast<double>(t.n);
  double mi = 0;
  for (size_t r = 0; r < t.cells.size(); ++r) {
    for (size_t c = 0; c < t.cells[r].size(); ++c) {
      const size_t cell = t.cells[r][c];
      if (cell == 0) continue;
      const double p = static_cast<double>(cell) / n;
      mi += p * std::log(n * static_cast<double>(cell) /
                         (static_cast<double>(t.row_sums[r]) *
                          static_cast<double>(t.col_sums[c])));
    }
  }
  return std::max(0.0, mi);  // Clamp float noise on independent partitions.
}

// Shannon entropy of one partition, in nats.
inline double LabelEntropy(std::span<const int64_t> labels) {
  if (labels.empty()) return 0.0;
  std::unordered_map<int64_t, size_t> sizes;
  for (const int64_t label : labels) ++sizes[label];
  const double n = static_cast<double>(labels.size());
  double h = 0;
  for (const auto& [label, size] : sizes) {
    const double p = static_cast<double>(size) / n;
    h -= p * std::log(p);
  }
  return std::max(0.0, h);
}

// NMI with arithmetic-mean normalization (scikit-learn's default).
inline double NormalizedMutualInfo(std::span<const int64_t> a,
                                   std::span<const int64_t> b) {
  const double ha = LabelEntropy(a);
  const double hb = LabelEntropy(b);
  if (ha == 0.0 && hb == 0.0) return 1.0;  // Same single cluster each.
  const double mi = MutualInfo(a, b);
  const double normalizer = 0.5 * (ha + hb);
  if (normalizer <= 0.0) return 0.0;
  return mi / normalizer;
}

// One run graded against a reference: everything a bench record or a CLI
// --quality report needs about label agreement.
struct QualityReport {
  size_t n = 0;
  size_t predicted_clusters = 0;  // Non-noise clusters in `predicted`.
  size_t truth_clusters = 0;      // Non-noise clusters in `truth`.
  double ari = 0;
  double nmi = 0;
  double predicted_noise_ratio = 0;
  double truth_noise_ratio = 0;
  std::vector<size_t> cluster_size_histogram;  // Of `predicted`; log2 buckets.
  uint64_t label_checksum = 0;                 // Of `predicted`; FNV-1a.
};

inline size_t CountClusters(std::span<const int64_t> labels) {
  std::unordered_map<int64_t, size_t> sizes;
  for (const int64_t label : labels) {
    if (label != Clustering::kNoise) ++sizes[label];
  }
  return sizes.size();
}

inline QualityReport EvaluateQuality(std::span<const int64_t> predicted,
                                     std::span<const int64_t> truth) {
  QualityReport report;
  report.n = predicted.size();
  report.predicted_clusters = CountClusters(predicted);
  report.truth_clusters = CountClusters(truth);
  report.ari = AdjustedRandIndex(predicted, truth);
  report.nmi = NormalizedMutualInfo(predicted, truth);
  report.predicted_noise_ratio = NoiseRatio(predicted);
  report.truth_noise_ratio = NoiseRatio(truth);
  report.cluster_size_histogram = ClusterSizeHistogram(predicted);
  report.label_checksum = LabelChecksum(predicted);
  return report;
}

inline QualityReport EvaluateQuality(const Clustering& predicted,
                                     std::span<const int64_t> truth) {
  return EvaluateQuality(std::span<const int64_t>(predicted.cluster), truth);
}

// Ground-truth label file: one integer label per line (blank lines and
// `#` comments skipped) — the format of tests/data/*.labels and of the
// files pdbscan_cli --quality takes. Throws std::runtime_error on open
// failure or a non-integer line.
inline std::vector<int64_t> ReadLabelsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open labels file: " + path);
  std::vector<int64_t> labels;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    size_t used = 0;
    int64_t value = 0;
    try {
      value = std::stoll(line.substr(start), &used);
    } catch (const std::exception&) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) +
                               ": not an integer label: " + line);
    }
    labels.push_back(value);
  }
  return labels;
}

}  // namespace pdbscan::quality

#endif  // PDBSCAN_QUALITY_METRICS_H_
