// Point-wise range-query DBSCAN baselines.
//
// * OriginalDbscan: the classic Ester et al. [38] algorithm — seed-queue
//   cluster expansion with an epsilon-range query per point, here served by
//   a k-d tree. Sequential. Output follows the standard (multi-membership)
//   DBSCAN definition, so it doubles as a medium-scale correctness oracle.
//
// * PdsDbscan: structure-faithful stand-in for PDSDBSCAN (Patwary et al.
//   [73]) and for the paper's own "parallel k-d tree baseline" (Section
//   7.2): every point issues a parallel epsilon-range query, core-core pairs
//   are merged through a disjoint-set structure (ours is lock-free; the
//   original is lock-based), and border points are resolved in a final pass.
//
// Both do Theta(range-query) work per point, which is what makes them
// epsilon-sensitive and minPts-insensitive — the contrast the paper's
// Figures 6 and 7 highlight.
#ifndef PDBSCAN_BASELINES_POINTWISE_H_
#define PDBSCAN_BASELINES_POINTWISE_H_

#include <deque>
#include <span>
#include <vector>

#include "containers/union_find.h"
#include "dbscan/types.h"
#include "geometry/kd_tree.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"

namespace pdbscan::baselines {

namespace internal {

// Shared finalization: memberships from per-point root lists (roots are
// point indices of union-find representatives).
template <int D>
Clustering FinalizePointwise(size_t n, const std::vector<uint8_t>& is_core,
                             containers::UnionFind& uf,
                             const std::vector<std::vector<size_t>>& border_roots) {
  Clustering out;
  out.is_core = is_core;
  out.cluster.assign(n, Clustering::kNoise);
  out.membership_offsets.assign(n + 1, 0);
  std::vector<int64_t> root_to_id(n, -1);
  int64_t next_id = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t count = 0;
    if (is_core[i]) {
      const size_t r = uf.Find(i);
      if (root_to_id[r] < 0) root_to_id[r] = next_id++;
      count = 1;
    } else {
      for (const size_t r : border_roots[i]) {
        if (root_to_id[r] < 0) root_to_id[r] = next_id++;
      }
      count = border_roots[i].size();
    }
    out.membership_offsets[i + 1] = out.membership_offsets[i] + count;
  }
  out.num_clusters = static_cast<size_t>(next_id);
  out.membership_ids.resize(out.membership_offsets[n]);
  for (size_t i = 0; i < n; ++i) {
    size_t w = out.membership_offsets[i];
    if (is_core[i]) {
      out.membership_ids[w] = root_to_id[uf.Find(i)];
    } else {
      std::vector<int64_t> ids;
      ids.reserve(border_roots[i].size());
      for (const size_t r : border_roots[i]) ids.push_back(root_to_id[r]);
      std::sort(ids.begin(), ids.end());
      for (const int64_t id : ids) out.membership_ids[w++] = id;
    }
    if (out.membership_offsets[i + 1] > out.membership_offsets[i]) {
      out.cluster[i] = out.membership_ids[out.membership_offsets[i]];
    }
  }
  return out;
}

// Distinct union-find roots of core points within eps of p, sorted.
template <int D>
std::vector<size_t> BorderRootsOf(const geometry::KdTree<D>& tree,
                                  std::span<const geometry::Point<D>> pts,
                                  const std::vector<uint8_t>& is_core,
                                  containers::UnionFind& uf, size_t i,
                                  double epsilon) {
  std::vector<size_t> roots;
  tree.ForEachInBall(pts[i], epsilon, [&](uint32_t j) {
    if (is_core[j]) roots.push_back(uf.Find(j));
    return true;
  });
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

}  // namespace internal

// Sequential Ester et al. DBSCAN with k-d tree region queries.
template <int D>
Clustering OriginalDbscan(std::span<const geometry::Point<D>> pts,
                          double epsilon, size_t min_pts) {
  const size_t n = pts.size();
  geometry::KdTree<D> tree(pts);
  std::vector<uint8_t> is_core(n, 0);
  for (size_t i = 0; i < n; ++i) {
    is_core[i] = tree.CountInBall(pts[i], epsilon, min_pts) >= min_pts ? 1 : 0;
  }

  // Queue-based expansion over core points.
  containers::UnionFind uf(n);
  std::vector<uint8_t> visited(n, 0);
  std::deque<size_t> queue;
  for (size_t seed = 0; seed < n; ++seed) {
    if (!is_core[seed] || visited[seed]) continue;
    visited[seed] = 1;
    queue.push_back(seed);
    while (!queue.empty()) {
      const size_t p = queue.front();
      queue.pop_front();
      tree.ForEachInBall(pts[p], epsilon, [&](uint32_t q) {
        if (!is_core[q]) return true;
        uf.Link(p, q);
        if (!visited[q]) {
          visited[q] = 1;
          queue.push_back(q);
        }
        return true;
      });
    }
  }

  std::vector<std::vector<size_t>> border_roots(n);
  for (size_t i = 0; i < n; ++i) {
    if (is_core[i]) continue;
    border_roots[i] =
        internal::BorderRootsOf<D>(tree, pts, is_core, uf, i, epsilon);
  }
  return internal::FinalizePointwise<D>(n, is_core, uf, border_roots);
}

// Parallel disjoint-set DBSCAN (PDSDBSCAN-style).
template <int D>
Clustering PdsDbscan(std::span<const geometry::Point<D>> pts, double epsilon,
                     size_t min_pts) {
  const size_t n = pts.size();
  geometry::KdTree<D> tree(pts);
  std::vector<uint8_t> is_core(n, 0);
  parallel::parallel_for(0, n, [&](size_t i) {
    is_core[i] = tree.CountInBall(pts[i], epsilon, min_pts) >= min_pts ? 1 : 0;
  });

  containers::UnionFind uf(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    if (!is_core[i]) return;
    tree.ForEachInBall(pts[i], epsilon, [&](uint32_t j) {
      // Each unordered pair linked once (j < i side does the work).
      if (j < i && is_core[j]) uf.Link(i, j);
      return true;
    });
  });

  std::vector<std::vector<size_t>> border_roots(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    if (is_core[i]) return;
    border_roots[i] =
        internal::BorderRootsOf<D>(tree, pts, is_core, uf, i, epsilon);
  });
  return internal::FinalizePointwise<D>(n, is_core, uf, border_roots);
}

}  // namespace pdbscan::baselines

#endif  // PDBSCAN_BASELINES_POINTWISE_H_
