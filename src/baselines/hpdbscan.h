// HPDBSCAN-style baseline (Götz et al. [43]).
//
// Structure-faithful stand-in for the shared-memory mode of HPDBSCAN: space
// is carved into a hypergrid of side epsilon, each point runs a *point-wise*
// neighborhood query over its 3^d surrounding cells (this is the
// epsilon-sensitive cost the paper contrasts with), clusters are formed
// locally with a disjoint-set structure and merged by relabeling. The
// original is OpenMP/MPI with data-partition merge rounds; ours runs the
// same phases in-process (see DESIGN.md's substitution table).
//
// Output follows the standard DBSCAN definition (multi-membership border
// points), so it can be cross-checked against the exact implementations.
#ifndef PDBSCAN_BASELINES_HPDBSCAN_H_
#define PDBSCAN_BASELINES_HPDBSCAN_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "baselines/pointwise.h"
#include "containers/hash_table.h"
#include "containers/union_find.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "primitives/semisort.h"

namespace pdbscan::baselines {

template <int D>
Clustering HpDbscan(std::span<const geometry::Point<D>> pts, double epsilon,
                    size_t min_pts) {
  using geometry::CellCoords;
  using geometry::Point;
  const size_t n = pts.size();
  const double eps2 = epsilon * epsilon;
  Clustering empty_out;
  if (n == 0) {
    empty_out.membership_offsets.assign(1, 0);
    empty_out.num_clusters = 0;
    return empty_out;
  }

  // Hypergrid with side epsilon (HPDBSCAN's indexing choice): neighborhood
  // queries touch the 3^D surrounding cells.
  geometry::BBox<D> bounds = geometry::ComputeBBox(pts.data(), n);
  const Point<D> origin = bounds.min;

  std::vector<std::pair<CellCoords<D>, uint32_t>> pairs(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    pairs[i] = {geometry::CellOf<D>(pts[i], origin, epsilon),
                static_cast<uint32_t>(i)};
  });
  auto grouped = primitives::Semisort<CellCoords<D>, uint32_t>(
      std::span<const std::pair<CellCoords<D>, uint32_t>>(pairs),
      [](const CellCoords<D>& c) { return geometry::HashCellCoords<D>(c); },
      [](const CellCoords<D>& a, const CellCoords<D>& b) { return a == b; });
  const size_t num_cells = grouped.num_groups();

  struct CoordsHash {
    uint64_t operator()(const CellCoords<D>& c) const {
      return geometry::HashCellCoords<D>(c);
    }
  };
  struct CoordsEq {
    bool operator()(const CellCoords<D>& a, const CellCoords<D>& b) const {
      return a == b;
    }
  };
  containers::ConcurrentMap<CellCoords<D>, uint32_t, CoordsHash, CoordsEq>
      table(num_cells);
  parallel::parallel_for(0, num_cells, [&](size_t c) {
    table.Insert(grouped.items[grouped.group_offsets[c]].first,
                 static_cast<uint32_t>(c));
  });

  // Point-wise neighborhood function over the 3^D surrounding cells.
  auto for_each_neighbor = [&](size_t i, auto&& fn) {
    const CellCoords<D> base = geometry::CellOf<D>(pts[i], origin, epsilon);
    CellCoords<D> probe;
    std::array<int64_t, D> counter;
    for (int k = 0; k < D; ++k) counter[k] = -1;
    while (true) {
      for (int k = 0; k < D; ++k) {
        probe[k] = base[k] + counter[k];
      }
      const uint32_t* cell = table.Find(probe);
      if (cell != nullptr) {
        const size_t begin = grouped.group_offsets[*cell];
        const size_t end = grouped.group_offsets[*cell + 1];
        for (size_t s = begin; s < end; ++s) {
          const uint32_t j = grouped.items[s].second;
          if (pts[i].SquaredDistance(pts[j]) <= eps2) fn(j);
        }
      }
      int k = D - 1;
      while (k >= 0 && counter[k] == 1) {
        counter[k] = -1;
        --k;
      }
      if (k < 0) break;
      ++counter[k];
    }
  };

  // Phase 1: core determination, point-wise.
  std::vector<uint8_t> is_core(n, 0);
  parallel::parallel_for(0, n, [&](size_t i) {
    size_t count = 0;
    for_each_neighbor(i, [&](uint32_t) { ++count; });
    is_core[i] = count >= min_pts ? 1 : 0;
  });

  // Phase 2: local clustering (disjoint sets over core-core pairs), then
  // the merge/relabel happens implicitly through the shared union-find.
  containers::UnionFind uf(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    if (!is_core[i]) return;
    for_each_neighbor(i, [&](uint32_t j) {
      if (j < i && is_core[j]) uf.Link(i, j);
    });
  });

  // Phase 3: border points.
  std::vector<std::vector<size_t>> border_roots(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    if (is_core[i]) return;
    auto& roots = border_roots[i];
    for_each_neighbor(i, [&](uint32_t j) {
      if (is_core[j]) roots.push_back(uf.Find(j));
    });
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  });

  return internal::FinalizePointwise<D>(n, is_core, uf, border_roots);
}

}  // namespace pdbscan::baselines

#endif  // PDBSCAN_BASELINES_HPDBSCAN_H_
