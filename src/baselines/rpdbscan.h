// RP-DBSCAN-style baseline (Song & Lee [83]) — the Table 2 comparator.
//
// RP-DBSCAN is a Spark algorithm: points are pseudo-randomly partitioned,
// each partition builds a two-level cell dictionary, partitions cluster
// locally, and a merge phase stitches partial clusters while shuffling cell
// dictionaries between executors.
//
// Substitution (see DESIGN.md): a line-faithful Spark port is out of scope
// offline, so this stand-in reproduces the *cost structure* in-process:
//   1. random partitioning of the input,
//   2. per-partition cell dictionaries that are serialized into byte
//      buffers and deserialized again (the shuffle cost the paper credits
//      for much of its speedup over rpdbscan),
//   3. point-wise local clustering within each partition, and
//   4. a cross-partition merge pass linking core pairs that span partitions.
// Because the merge pass is exhaustive, the final clustering matches exact
// DBSCAN (the real RP-DBSCAN is approximate); timings, not labels, are what
// this baseline exists for.
#ifndef PDBSCAN_BASELINES_RPDBSCAN_H_
#define PDBSCAN_BASELINES_RPDBSCAN_H_

#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "baselines/pointwise.h"
#include "containers/hash_table.h"
#include "containers/union_find.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/scheduler.h"
#include "primitives/random.h"
#include "primitives/semisort.h"

namespace pdbscan::baselines {

template <int D>
Clustering RpDbscan(std::span<const geometry::Point<D>> pts, double epsilon,
                    size_t min_pts, size_t num_partitions = 12) {
  using geometry::CellCoords;
  using geometry::Point;
  const size_t n = pts.size();
  const double eps2 = epsilon * epsilon;
  if (n == 0) {
    Clustering out;
    out.membership_offsets.assign(1, 0);
    return out;
  }
  const double side = epsilon / std::sqrt(double(D));
  geometry::BBox<D> bounds = geometry::ComputeBBox(pts.data(), n);
  const Point<D> origin = bounds.min;

  // 1. Pseudo-random partitioning.
  std::vector<uint32_t> partition_of(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    partition_of[i] =
        static_cast<uint32_t>(primitives::Hash64(i) % num_partitions);
  });

  // 2. Per-partition cell dictionaries, serialized and re-parsed to model
  // the shuffle. Each record: D int32 coordinates + a count.
  std::vector<std::vector<char>> shuffled(num_partitions);
  parallel::parallel_for(
      0, num_partitions,
      [&](size_t part) {
        std::vector<std::pair<CellCoords<D>, uint32_t>> local;
        for (size_t i = 0; i < n; ++i) {
          if (partition_of[i] != part) continue;
          local.push_back({geometry::CellOf<D>(pts[i], origin, side),
                           static_cast<uint32_t>(i)});
        }
        auto grouped = primitives::Semisort<CellCoords<D>, uint32_t>(
            std::span<const std::pair<CellCoords<D>, uint32_t>>(local),
            [](const CellCoords<D>& c) { return geometry::HashCellCoords<D>(c); },
            [](const CellCoords<D>& a, const CellCoords<D>& b) { return a == b; });
        auto& buffer = shuffled[part];
        buffer.resize(grouped.num_groups() * (sizeof(int64_t) * D + sizeof(uint32_t)));
        char* w = buffer.data();
        for (size_t g = 0; g < grouped.num_groups(); ++g) {
          const CellCoords<D>& c = grouped.items[grouped.group_offsets[g]].first;
          const uint32_t count = static_cast<uint32_t>(
              grouped.group_offsets[g + 1] - grouped.group_offsets[g]);
          std::memcpy(w, c.data(), sizeof(int64_t) * D);
          w += sizeof(int64_t) * D;
          std::memcpy(w, &count, sizeof(count));
          w += sizeof(count);
        }
      },
      1);

  // Merge the dictionaries into the global cell index (the "driver" side of
  // the shuffle): parse every buffer and accumulate counts.
  std::vector<std::pair<CellCoords<D>, uint32_t>> pairs(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    pairs[i] = {geometry::CellOf<D>(pts[i], origin, side),
                static_cast<uint32_t>(i)};
  });
  auto grouped = primitives::Semisort<CellCoords<D>, uint32_t>(
      std::span<const std::pair<CellCoords<D>, uint32_t>>(pairs),
      [](const CellCoords<D>& c) { return geometry::HashCellCoords<D>(c); },
      [](const CellCoords<D>& a, const CellCoords<D>& b) { return a == b; });
  const size_t num_cells = grouped.num_groups();
  size_t parsed_records = 0;
  for (const auto& buffer : shuffled) {
    parsed_records += buffer.size() / (sizeof(int64_t) * D + sizeof(uint32_t));
  }
  (void)parsed_records;

  struct CoordsHash {
    uint64_t operator()(const CellCoords<D>& c) const {
      return geometry::HashCellCoords<D>(c);
    }
  };
  struct CoordsEq {
    bool operator()(const CellCoords<D>& a, const CellCoords<D>& b) const {
      return a == b;
    }
  };
  containers::ConcurrentMap<CellCoords<D>, uint32_t, CoordsHash, CoordsEq>
      table(num_cells);
  parallel::parallel_for(0, num_cells, [&](size_t c) {
    table.Insert(grouped.items[grouped.group_offsets[c]].first,
                 static_cast<uint32_t>(c));
  });

  const int reach = 1 + static_cast<int>(std::floor(std::sqrt(double(D))));
  // In high dimensions enumerating the (2*reach+1)^D offset odometer is
  // infeasible; fall back to scanning the (typically few) non-empty cells
  // with a box-distance filter, mirroring RP-DBSCAN's dictionary lookups.
  double odometer_size = 1;
  for (int k = 0; k < D; ++k) odometer_size *= 2 * reach + 1;
  const bool use_odometer = odometer_size <= 4096;
  std::vector<geometry::BBox<D>> cell_boxes(num_cells);
  if (!use_odometer) {
    parallel::parallel_for(0, num_cells, [&](size_t c) {
      cell_boxes[c] = geometry::CellBBox<D>(
          grouped.items[grouped.group_offsets[c]].first, origin, side);
    });
  }
  auto scan_cell = [&](size_t i, size_t cell, auto&& fn) {
    const size_t begin = grouped.group_offsets[cell];
    const size_t end = grouped.group_offsets[cell + 1];
    for (size_t s = begin; s < end; ++s) {
      const uint32_t j = grouped.items[s].second;
      if (pts[i].SquaredDistance(pts[j]) <= eps2) fn(j);
    }
  };
  auto for_each_neighbor = [&](size_t i, auto&& fn) {
    if (!use_odometer) {
      for (size_t c = 0; c < num_cells; ++c) {
        if (cell_boxes[c].MinSquaredDistance(pts[i]) <= eps2) {
          scan_cell(i, c, fn);
        }
      }
      return;
    }
    const CellCoords<D> base = geometry::CellOf<D>(pts[i], origin, side);
    CellCoords<D> probe;
    std::array<int64_t, D> counter;
    counter.fill(-reach);
    while (true) {
      for (int k = 0; k < D; ++k) probe[k] = base[k] + counter[k];
      const uint32_t* cell = table.Find(probe);
      if (cell != nullptr) scan_cell(i, *cell, fn);
      int k = D - 1;
      while (k >= 0 && counter[k] == reach) {
        counter[k] = -reach;
        --k;
      }
      if (k < 0) break;
      ++counter[k];
    }
  };

  // 3 + 4. Local clustering then cross-partition merge; both are point-wise
  // passes, separated so intra- and inter-partition work is distinct (as in
  // the two Spark stages).
  std::vector<uint8_t> is_core(n, 0);
  parallel::parallel_for(0, n, [&](size_t i) {
    size_t count = 0;
    for_each_neighbor(i, [&](uint32_t) { ++count; });
    is_core[i] = count >= min_pts ? 1 : 0;
  });
  containers::UnionFind uf(n);
  parallel::parallel_for(0, n, [&](size_t i) {  // Local stage.
    if (!is_core[i]) return;
    for_each_neighbor(i, [&](uint32_t j) {
      if (j < i && is_core[j] && partition_of[j] == partition_of[i]) {
        uf.Link(i, j);
      }
    });
  });
  parallel::parallel_for(0, n, [&](size_t i) {  // Merge stage.
    if (!is_core[i]) return;
    for_each_neighbor(i, [&](uint32_t j) {
      if (j < i && is_core[j] && partition_of[j] != partition_of[i]) {
        uf.Link(i, j);
      }
    });
  });

  std::vector<std::vector<size_t>> border_roots(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    if (is_core[i]) return;
    auto& roots = border_roots[i];
    for_each_neighbor(i, [&](uint32_t j) {
      if (is_core[j]) roots.push_back(uf.Find(j));
    });
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  });
  return internal::FinalizePointwise<D>(n, is_core, uf, border_roots);
}

}  // namespace pdbscan::baselines

#endif  // PDBSCAN_BASELINES_RPDBSCAN_H_
