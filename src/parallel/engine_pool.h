// EnginePool — thread-safe query serving over a frozen CellIndex snapshot.
//
// The serving architecture the paper's build-once/query-many pipeline
// implies (and that Berkholz et al.'s query-under-preprocessing split
// formalizes): an immutable shared index, cheap per-client query state.
// The pool owns a shared_ptr<const CellIndex<D>> plus a free list of
// QueryContexts; any number of client threads may call Run/Sweep
// concurrently — each call leases a context, runs the standard query
// pipeline against the shared index, and returns the context to the free
// list. Results are bit-identical to serial one-shot pdbscan::Dbscan calls
// with the same parameters.
//
// Snapshot hand-over: ReplaceIndex() swaps in a new immutable snapshot
// (typically published by streaming::DynamicCellIndex after an update
// batch) and bumps the pool's snapshot GENERATION — a monotonically
// increasing number that names exactly one served dataset state. Each
// query pins the (snapshot, generation) pair current at its start — the
// lease copies both under the same lock that hands out the context — so
// readers never block on writers and never observe a half-applied update;
// queries in flight during a swap simply finish against the snapshot they
// started with, which stays alive until the last such query drops its
// reference. Generations are what make caching-under-updates sound: a
// result computed from generation G is valid for exactly the requests that
// would be served from G (see parallel/serving_scheduler.h).
//
//   auto index = pdbscan::dbscan::CellIndex<2>::Build(pts, eps, cap, opts);
//   pdbscan::parallel::EnginePool<2> pool(index);
//   // from any thread:
//   pdbscan::Clustering c = pool.Run(min_pts);
//
// Context bounding and lease deadlines: by default the pool creates a new
// QueryContext whenever every existing one is busy, so leases never block —
// but each context owns scratch proportional to the dataset, so an
// unbounded burst of clients means unbounded memory. SetMaxContexts(n)
// caps the pool; once n contexts are busy, further acquisitions WAIT for a
// free one. A bounded wait is only safe with a deadline (a stalled client
// would otherwise starve every later caller forever), so all acquisition —
// including the legacy Run/Sweep surfaces — goes through
// AcquireLease/TryAcquireLeaseUntil, which honor a per-pool default
// deadline (SetDefaultLeaseDeadline) and time out with LeaseTimeout /
// an empty lease instead of blocking indefinitely. Timed-out legacy calls
// tick requests_timed_out in the pool's own stats sink. Waits go through
// an injectable Clock (serving_clock.h), so the timeout paths are
// deterministic fake-clock unit tests, not timing assertions.
//
// Inner parallelism: queries execute on the process-wide work-stealing
// scheduler (scheduler.h), which accepts submissions from any thread, so
// client concurrency composes with PDBSCAN_NUM_THREADS. For maximum
// queries/sec with many clients, run the scheduler with 1 worker (each
// query executes serially on its client thread; see
// bench/throughput_concurrent.cpp); a single client with many workers gets
// minimum latency instead. Do not call parallel::set_num_workers() while
// pool queries are in flight.
//
// Stats: each context accumulates into its own PipelineStats (no shared
// Reset/read-out races between clients, unlike leaning on GlobalStats());
// AggregateStats() sums the per-context sinks plus the index-build counters
// and the pool's own admission counters into a caller-provided sink. The
// sums are exact once callers are quiescent.
#ifndef PDBSCAN_PARALLEL_ENGINE_POOL_H_
#define PDBSCAN_PARALLEL_ENGINE_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dbscan/cell_index.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"
#include "parallel/serving_clock.h"

namespace pdbscan::sharding {
template <int D>
class ShardedCellIndex;
}  // namespace pdbscan::sharding

namespace pdbscan::parallel {

// Thrown by the blocking acquisition surfaces (Run/Sweep/AcquireLease) when
// a bounded pool stays exhausted past the default lease deadline.
struct LeaseTimeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

template <int D>
class EnginePool {
 public:
  // Serves an index built elsewhere (possibly shared with other pools).
  // The index may come from any producer of frozen CellIndexes: a direct
  // CellIndex::Build, a streaming DynamicCellIndex snapshot, or a sharded
  // build's merged index.
  explicit EnginePool(std::shared_ptr<const dbscan::CellIndex<D>> index)
      : index_(std::move(index)) {
    if (!index_) throw std::invalid_argument("EnginePool needs an index");
  }

  // Adopts an index at an explicit starting generation. Generation numbers
  // are per-pool by default (start at 1, bump on ReplaceIndex); a process
  // that recovers a dataset mid-history — a replica cold-starting from a
  // shipped checkpoint (net/replication.h) — instead needs its pool to
  // report the DATASET's generation, so that "generation G" names the same
  // point set on every node. `generation` must be >= 1 (0 is reserved as
  // the Lease-was-moved-from sentinel).
  EnginePool(std::shared_ptr<const dbscan::CellIndex<D>> index,
             uint64_t generation)
      : index_(std::move(index)), generation_(generation) {
    if (!index_) throw std::invalid_argument("EnginePool needs an index");
    if (generation == 0) {
      throw std::invalid_argument("EnginePool generation must be >= 1");
    }
  }

  // Serves the merged frozen index of a spatially sharded build — sharded
  // indexes are ordinary CellIndexes after their boundary merge, so
  // serving and sweeps work unchanged. The pool shares ownership of the
  // merged index; the ShardedCellIndex itself need not outlive the pool.
  // Defined in sharding/sharded_cell_index.h (include it to use this
  // constructor).
  explicit EnginePool(const sharding::ShardedCellIndex<D>& sharded);

  // Builds the index and serves it: the one-stop "service" constructor.
  // `counts_cap` is the largest min_pts answered from the shared counts;
  // larger values remain correct via per-context recounts. Build counters
  // land in build_stats(), so AggregateStats() reports cells_built == 1 no
  // matter how many queries follow.
  EnginePool(std::span<const geometry::Point<D>> points, double epsilon,
             size_t counts_cap, Options options = Options())
      : index_(std::make_shared<const dbscan::CellIndex<D>>(
            points, epsilon, counts_cap, std::move(options), &build_stats_)) {}

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  // RAII lease: one QueryContext plus the (snapshot, generation) pair
  // pinned at acquisition, all taken under one lock acquisition. Movable
  // and boolean-testable so the non-throwing acquisition surface can
  // return "no lease" on timeout. Run/Sweep on an empty lease throw.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), slot_(other.slot_),
          index_(std::move(other.index_)), generation_(other.generation_) {
      other.pool_ = nullptr;
      other.slot_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        slot_ = other.slot_;
        index_ = std::move(other.index_);
        generation_ = other.generation_;
        other.pool_ = nullptr;
        other.slot_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    explicit operator bool() const { return slot_ != nullptr; }

    // The snapshot this lease pins; every Run/Sweep through the lease
    // answers from exactly this dataset state, even across ReplaceIndex.
    const std::shared_ptr<const dbscan::CellIndex<D>>& index() const {
      return index_;
    }

    // The generation number of the pinned snapshot.
    uint64_t generation() const { return generation_; }

    // Clusters the pinned snapshot at `min_pts` through the leased context.
    Clustering Run(size_t min_pts) {
      Require();
      return slot_->context.Run(index_, min_pts);
    }

    // Answers a whole min_pts sweep against the pinned snapshot.
    std::vector<Clustering> Sweep(std::span<const size_t> minpts_list) {
      Require();
      return slot_->context.Sweep(index_, minpts_list);
    }

   private:
    friend class EnginePool;
    Lease(EnginePool* pool, typename EnginePool::Slot* slot,
          std::shared_ptr<const dbscan::CellIndex<D>> index,
          uint64_t generation)
        : pool_(pool), slot_(slot), index_(std::move(index)),
          generation_(generation) {}

    void Require() const {
      if (slot_ == nullptr) {
        throw std::logic_error("Run/Sweep on an empty EnginePool::Lease");
      }
    }

    void Release() {
      if (pool_ == nullptr || slot_ == nullptr) return;
      std::lock_guard<std::mutex> lock(pool_->mu_);
      pool_->free_.push_back(slot_);
      pool_->lease_cv_.notify_one();
      pool_ = nullptr;
      slot_ = nullptr;
    }

    EnginePool* pool_ = nullptr;
    typename EnginePool::Slot* slot_ = nullptr;
    std::shared_ptr<const dbscan::CellIndex<D>> index_;
    uint64_t generation_ = 0;
  };

  // Blocking acquisition with the pool's default deadline. Returns
  // immediately while the pool is unbounded or has capacity; on a bounded,
  // exhausted pool waits for a release and throws LeaseTimeout once the
  // default deadline passes (ticking requests_timed_out in pool_stats()).
  Lease AcquireLease() {
    const uint64_t deadline =
        default_lease_deadline_nanos_.load(std::memory_order_relaxed);
    Lease lease = TryAcquireLeaseUntil(
        deadline == kNeverNanos ? kNeverNanos
                                : clock()->NowNanos() + deadline);
    if (!lease) {
      pool_stats_.requests_timed_out.fetch_add(1, std::memory_order_relaxed);
      throw LeaseTimeout("EnginePool lease wait exceeded the default deadline");
    }
    return lease;
  }

  // Non-throwing acquisition bounded by an absolute deadline on the pool's
  // clock (kNeverNanos: wait indefinitely). Returns an empty lease on
  // timeout; ticks no stats — callers own their timeout accounting.
  Lease TryAcquireLeaseUntil(uint64_t deadline_nanos) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (!free_.empty()) {
        Slot* slot = free_.back();
        free_.pop_back();
        slot->context.EvictStaleCountsCache(index_);
        return Lease(this, slot, index_, generation_);
      }
      const size_t max = max_contexts_;
      if (max == 0 || slots_.size() < max) {
        slots_.push_back(std::make_unique<Slot>());
        return Lease(this, slots_.back().get(), index_, generation_);
      }
      if (clock()->WaitUntil(lock, lease_cv_, deadline_nanos) ==
              Clock::WaitStatus::kTimeout &&
          free_.empty()) {
        return Lease();
      }
    }
  }

  // Thread-safe: clusters the served snapshot's point set at `min_pts`.
  // The leased context caches over-cap recounts across queries (once per
  // context, not once per query) and pins the snapshot for the duration of
  // the query even if ReplaceIndex runs. Throws LeaseTimeout if a bounded
  // pool stays exhausted past the default lease deadline.
  Clustering Run(size_t min_pts) { return AcquireLease().Run(min_pts); }

  // Thread-safe: answers a whole min_pts sweep through one leased context,
  // entirely against the single snapshot pinned at lease time.
  std::vector<Clustering> Sweep(std::span<const size_t> minpts_list) {
    return AcquireLease().Sweep(minpts_list);
  }

  // Brace-list convenience for the overload above: pool.Sweep({5, 10, 50}).
  std::vector<Clustering> Sweep(std::initializer_list<size_t> minpts_list) {
    return Sweep(
        std::span<const size_t>(minpts_list.begin(), minpts_list.size()));
  }

  // Thread-safe: atomically swaps the served snapshot and bumps the
  // generation. In-flight queries finish against the snapshot they pinned;
  // subsequent leases see the new one. This is the streaming hand-over
  // point — StreamingClusterer calls it after every published update
  // batch. Free contexts' over-cap recount caches are evicted here (they
  // are quiescent while mu_ is held), and busy ones evict at their next
  // lease, so retired snapshots are never kept alive indefinitely by
  // context caches — only by in-flight queries.
  void ReplaceIndex(std::shared_ptr<const dbscan::CellIndex<D>> index) {
    if (!index) throw std::invalid_argument("EnginePool needs an index");
    std::lock_guard<std::mutex> lock(mu_);
    index_ = std::move(index);
    ++generation_;
    for (Slot* slot : free_) slot->context.EvictStaleCountsCache(index_);
  }

  // ReplaceIndex at an explicit generation, for pools whose generation
  // numbers track a shared dataset history rather than local swap counts
  // (see the explicit-generation constructor). The new generation must be
  // strictly greater than the current one — generations order snapshots,
  // and generation-keyed caches (serving_scheduler.h) rely on a key never
  // naming two different datasets.
  void ReplaceIndex(std::shared_ptr<const dbscan::CellIndex<D>> index,
                    uint64_t generation) {
    if (!index) throw std::invalid_argument("EnginePool needs an index");
    std::lock_guard<std::mutex> lock(mu_);
    if (generation <= generation_) {
      throw std::invalid_argument(
          "ReplaceIndex generation " + std::to_string(generation) +
          " must exceed current " + std::to_string(generation_));
    }
    index_ = std::move(index);
    generation_ = generation;
    for (Slot* slot : free_) slot->context.EvictStaleCountsCache(index_);
  }

  // The currently served snapshot (a consistent shared_ptr copy; the
  // pointee is immutable).
  std::shared_ptr<const dbscan::CellIndex<D>> shared_index() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_;
  }

  // The currently served (snapshot, generation) pair, read atomically —
  // the lookup key producers of generation-aware caches need (see
  // serving_scheduler.h).
  std::pair<std::shared_ptr<const dbscan::CellIndex<D>>, uint64_t>
  SnapshotAndGeneration() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {index_, generation_};
  }

  // The generation of the currently served snapshot. Starts at 1 for the
  // adopted/built index and increments on every ReplaceIndex.
  uint64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

  // Bounds the number of QueryContexts (0 = unbounded, the default). With
  // a bound in place, acquisitions beyond it wait — see the class comment.
  // Existing contexts above a new lower bound are not destroyed; the pool
  // simply stops creating more.
  void SetMaxContexts(size_t max_contexts) {
    std::lock_guard<std::mutex> lock(mu_);
    max_contexts_ = max_contexts;
    lease_cv_.notify_all();
  }

  // Deadline the blocking surfaces (Run/Sweep/AcquireLease) wait for a free
  // context on a bounded pool before throwing LeaseTimeout. Default: 30s.
  // kNeverNanos restores the pre-bounding behavior (wait forever).
  void SetDefaultLeaseDeadline(uint64_t nanos) {
    default_lease_deadline_nanos_.store(nanos, std::memory_order_relaxed);
  }

  // Injects the time source lease waits run on (tests: FakeClock). Must be
  // called while no acquisition is waiting; the clock must outlive the
  // pool. nullptr restores the real clock.
  void SetClock(Clock* clock) {
    std::lock_guard<std::mutex> lock(mu_);
    clock_ = clock;
  }

  // Counters of the index build, when this pool built its index (zero when
  // an externally built index was adopted).
  const dbscan::PipelineStats& build_stats() const { return build_stats_; }

  // The pool's own admission counters (currently: requests_timed_out from
  // lease-deadline expiry on the blocking surfaces).
  const dbscan::PipelineStats& pool_stats() const { return pool_stats_; }

  // Number of contexts ever created == peak query concurrency observed.
  size_t contexts_created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
  }

  // Sums build stats, the pool's admission counters, and every context's
  // counters/timings into `out` (which the caller typically Reset()s
  // first). Exact when no query is in flight; during traffic individual
  // counters are still atomically read but the sum is not a point-in-time
  // snapshot.
  void AggregateStats(dbscan::PipelineStats& out) const {
    out.MergeFrom(build_stats_);
    out.MergeFrom(pool_stats_);
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& slot : slots_) out.MergeFrom(slot->stats);
  }

 private:
  // A context plus its private stats sink. Slots are never destroyed while
  // the pool lives, so AggregateStats can walk them under the lock.
  struct Slot {
    dbscan::PipelineStats stats;
    dbscan::QueryContext<D> context{&stats};
  };

  Clock* clock() const { return clock_ != nullptr ? clock_ : &Clock::Real(); }

  dbscan::PipelineStats build_stats_;
  dbscan::PipelineStats pool_stats_;
  std::shared_ptr<const dbscan::CellIndex<D>> index_;
  uint64_t generation_ = 1;
  size_t max_contexts_ = 0;
  std::atomic<uint64_t> default_lease_deadline_nanos_{SecondsToNanos(30)};
  Clock* clock_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable lease_cv_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<Slot*> free_;
};

}  // namespace pdbscan::parallel

#endif  // PDBSCAN_PARALLEL_ENGINE_POOL_H_
