// EnginePool — thread-safe query serving over a frozen CellIndex snapshot.
//
// The serving architecture the paper's build-once/query-many pipeline
// implies (and that Berkholz et al.'s query-under-preprocessing split
// formalizes): an immutable shared index, cheap per-client query state.
// The pool owns a shared_ptr<const CellIndex<D>> plus a free list of
// QueryContexts; any number of client threads may call Run/Sweep
// concurrently — each call leases a context (creating one only when every
// existing context is busy, so steady-state traffic allocates nothing),
// runs the standard query pipeline against the shared index, and returns
// the context to the free list. Results are bit-identical to serial
// one-shot pdbscan::Dbscan calls with the same parameters.
//
// Snapshot hand-over: ReplaceIndex() swaps in a new immutable snapshot
// (typically published by streaming::DynamicCellIndex after an update
// batch). Each query pins the snapshot current at its start — the lease
// copies the shared_ptr under the same lock that hands out the context —
// so readers never block on writers and never observe a half-applied
// update; queries in flight during a swap simply finish against the
// snapshot they started with, which stays alive until the last such query
// drops its reference.
//
//   auto index = pdbscan::dbscan::CellIndex<2>::Build(pts, eps, cap, opts);
//   pdbscan::parallel::EnginePool<2> pool(index);
//   // from any thread:
//   pdbscan::Clustering c = pool.Run(min_pts);
//
// Inner parallelism: queries execute on the process-wide work-stealing
// scheduler (scheduler.h), which accepts submissions from any thread, so
// client concurrency composes with PDBSCAN_NUM_THREADS. For maximum
// queries/sec with many clients, run the scheduler with 1 worker (each
// query executes serially on its client thread; see
// bench/throughput_concurrent.cpp); a single client with many workers gets
// minimum latency instead. Do not call parallel::set_num_workers() while
// pool queries are in flight.
//
// Stats: each context accumulates into its own PipelineStats (no shared
// Reset/read-out races between clients, unlike leaning on GlobalStats());
// AggregateStats() sums the per-context sinks plus the index-build counters
// into a caller-provided sink. The sums are exact once callers are
// quiescent.
#ifndef PDBSCAN_PARALLEL_ENGINE_POOL_H_
#define PDBSCAN_PARALLEL_ENGINE_POOL_H_

#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "dbscan/cell_index.h"
#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "geometry/point.h"

namespace pdbscan::sharding {
template <int D>
class ShardedCellIndex;
}  // namespace pdbscan::sharding

namespace pdbscan::parallel {

template <int D>
class EnginePool {
 public:
  // Serves an index built elsewhere (possibly shared with other pools).
  // The index may come from any producer of frozen CellIndexes: a direct
  // CellIndex::Build, a streaming DynamicCellIndex snapshot, or a sharded
  // build's merged index.
  explicit EnginePool(std::shared_ptr<const dbscan::CellIndex<D>> index)
      : index_(std::move(index)) {
    if (!index_) throw std::invalid_argument("EnginePool needs an index");
  }

  // Serves the merged frozen index of a spatially sharded build — sharded
  // indexes are ordinary CellIndexes after their boundary merge, so
  // serving and sweeps work unchanged. The pool shares ownership of the
  // merged index; the ShardedCellIndex itself need not outlive the pool.
  // Defined in sharding/sharded_cell_index.h (include it to use this
  // constructor).
  explicit EnginePool(const sharding::ShardedCellIndex<D>& sharded);

  // Builds the index and serves it: the one-stop "service" constructor.
  // `counts_cap` is the largest min_pts answered from the shared counts;
  // larger values remain correct via per-context recounts. Build counters
  // land in build_stats(), so AggregateStats() reports cells_built == 1 no
  // matter how many queries follow.
  EnginePool(std::span<const geometry::Point<D>> points, double epsilon,
             size_t counts_cap, Options options = Options())
      : index_(std::make_shared<const dbscan::CellIndex<D>>(
            points, epsilon, counts_cap, std::move(options), &build_stats_)) {}

  EnginePool(const EnginePool&) = delete;
  EnginePool& operator=(const EnginePool&) = delete;

  // Thread-safe: clusters the served snapshot's point set at `min_pts`.
  // Passing the shared_ptr lets the leased context cache over-cap recounts
  // across queries (once per context, not once per query) and pins the
  // snapshot for the duration of the query even if ReplaceIndex runs.
  Clustering Run(size_t min_pts) {
    Lease lease(*this);
    lease.slot->context.EvictStaleCountsCache(lease.index);
    return lease.slot->context.Run(lease.index, min_pts);
  }

  // Thread-safe: answers a whole min_pts sweep through one leased context,
  // entirely against the single snapshot pinned at lease time.
  std::vector<Clustering> Sweep(std::span<const size_t> minpts_list) {
    Lease lease(*this);
    lease.slot->context.EvictStaleCountsCache(lease.index);
    return lease.slot->context.Sweep(lease.index, minpts_list);
  }

  // Brace-list convenience for the overload above: pool.Sweep({5, 10, 50}).
  std::vector<Clustering> Sweep(std::initializer_list<size_t> minpts_list) {
    return Sweep(
        std::span<const size_t>(minpts_list.begin(), minpts_list.size()));
  }

  // Thread-safe: atomically swaps the served snapshot. In-flight queries
  // finish against the snapshot they pinned; subsequent leases see the new
  // one. This is the streaming hand-over point — StreamingClusterer calls
  // it after every published update batch. Free contexts' over-cap recount
  // caches are evicted here (they are quiescent while mu_ is held), and
  // busy ones evict at their next lease, so retired snapshots are never
  // kept alive indefinitely by context caches — only by in-flight queries.
  void ReplaceIndex(std::shared_ptr<const dbscan::CellIndex<D>> index) {
    if (!index) throw std::invalid_argument("EnginePool needs an index");
    std::lock_guard<std::mutex> lock(mu_);
    index_ = std::move(index);
    for (Slot* slot : free_) slot->context.EvictStaleCountsCache(index_);
  }

  // The currently served snapshot (a consistent shared_ptr copy; the
  // pointee is immutable).
  std::shared_ptr<const dbscan::CellIndex<D>> shared_index() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_;
  }

  // Counters of the index build, when this pool built its index (zero when
  // an externally built index was adopted).
  const dbscan::PipelineStats& build_stats() const { return build_stats_; }

  // Number of contexts ever created == peak query concurrency observed.
  size_t contexts_created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
  }

  // Sums build stats and every context's counters/timings into `out`
  // (which the caller typically Reset()s first). Exact when no query is in
  // flight; during traffic individual counters are still atomically read
  // but the sum is not a point-in-time snapshot.
  void AggregateStats(dbscan::PipelineStats& out) const {
    out.MergeFrom(build_stats_);
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& slot : slots_) out.MergeFrom(slot->stats);
  }

 private:
  // A context plus its private stats sink. Slots are never destroyed while
  // the pool lives, so AggregateStats can walk them under the lock.
  struct Slot {
    dbscan::PipelineStats stats;
    dbscan::QueryContext<D> context{&stats};
  };

  // RAII lease of a free slot (or a freshly created one) plus the snapshot
  // to serve the query from, both taken under one lock acquisition.
  struct Lease {
    explicit Lease(EnginePool& pool) : pool_(pool) {
      std::lock_guard<std::mutex> lock(pool.mu_);
      index = pool.index_;
      if (!pool.free_.empty()) {
        slot = pool.free_.back();
        pool.free_.pop_back();
      } else {
        pool.slots_.push_back(std::make_unique<Slot>());
        slot = pool.slots_.back().get();
      }
    }
    ~Lease() {
      std::lock_guard<std::mutex> lock(pool_.mu_);
      pool_.free_.push_back(slot);
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    EnginePool& pool_;
    Slot* slot = nullptr;
    std::shared_ptr<const dbscan::CellIndex<D>> index;
  };

  dbscan::PipelineStats build_stats_;
  std::shared_ptr<const dbscan::CellIndex<D>> index_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<Slot*> free_;
};

}  // namespace pdbscan::parallel

#endif  // PDBSCAN_PARALLEL_ENGINE_POOL_H_
