#include "parallel/scheduler.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <random>
#include <vector>

#include "util/env.h"

namespace pdbscan::parallel {
namespace internal {

namespace {
// Slot index of the current thread within the pool's deque array. Workers
// get 0..P-2; external threads (e.g., main) share the last slot.
thread_local int tls_slot = -1;
}  // namespace

struct Pool::Impl {
  struct Queue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  explicit Impl(int total_threads)
      : queues(static_cast<size_t>(total_threads)), stop(false), pending(0) {
    const int num_threads = total_threads - 1;
    workers.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      workers.emplace_back([this, t]() { WorkerLoop(t); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(sleep_mu);
      stop.store(true, std::memory_order_release);
    }
    sleep_cv.notify_all();
    for (auto& w : workers) w.join();
  }

  void WorkerLoop(int slot) {
    tls_slot = slot;
    std::minstd_rand rng(static_cast<unsigned>(slot) * 0x9e3779b9u + 1);
    while (true) {
      Task task;
      if (TryPop(slot, rng, &task)) {
        Run(task);
        continue;
      }
      // No work found: sleep until something is submitted or we shut down.
      std::unique_lock<std::mutex> lock(sleep_mu);
      sleep_cv.wait(lock, [this]() {
        return stop.load(std::memory_order_acquire) ||
               pending.load(std::memory_order_acquire) > 0;
      });
      if (stop.load(std::memory_order_acquire)) return;
    }
  }

  bool TryPop(int self, std::minstd_rand& rng, Task* out) {
    // Own queue first (LIFO for locality), then steal (FIFO).
    {
      Queue& q = queues[static_cast<size_t>(self)];
      std::lock_guard<std::mutex> lock(q.mu);
      if (!q.tasks.empty()) {
        *out = std::move(q.tasks.back());
        q.tasks.pop_back();
        pending.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
    }
    const size_t nq = queues.size();
    const size_t start = rng() % nq;
    for (size_t i = 0; i < nq; ++i) {
      Queue& q = queues[(start + i) % nq];
      std::lock_guard<std::mutex> lock(q.mu);
      if (!q.tasks.empty()) {
        *out = std::move(q.tasks.front());
        q.tasks.pop_front();
        pending.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
    }
    return false;
  }

  static void Run(Task& task) {
    task.fn();
    task.remaining->fetch_sub(1, std::memory_order_acq_rel);
  }

  std::vector<Queue> queues;
  std::vector<std::thread> workers;
  std::mutex sleep_mu;
  std::condition_variable sleep_cv;
  std::atomic<bool> stop;
  std::atomic<size_t> pending;
};

Pool::Pool(int total_threads)
    : impl_(std::make_unique<Impl>(total_threads)),
      total_threads_(total_threads) {}

Pool::~Pool() = default;

void Pool::Submit(Task task) {
  int slot = tls_slot;
  if (slot < 0) slot = total_threads_ - 1;  // External threads share a slot.
  {
    Impl::Queue& q = impl_->queues[static_cast<size_t>(slot)];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  impl_->pending.fetch_add(1, std::memory_order_acq_rel);
  impl_->sleep_cv.notify_one();
}

bool Pool::RunOne() {
  int slot = tls_slot;
  if (slot < 0) slot = total_threads_ - 1;
  thread_local std::minstd_rand rng(std::random_device{}());
  Task task;
  if (impl_->TryPop(slot, rng, &task)) {
    Impl::Run(task);
    return true;
  }
  return false;
}

void Pool::WaitFor(std::atomic<size_t>& remaining) {
  while (remaining.load(std::memory_order_acquire) > 0) {
    if (!RunOne()) std::this_thread::yield();
  }
}

}  // namespace internal

Scheduler::Scheduler() {
  int n = util::GetEnvInt("PDBSCAN_NUM_THREADS", 0);
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  pool_ = std::make_unique<internal::Pool>(n);
}

Scheduler& Scheduler::Get() {
  static Scheduler* scheduler = new Scheduler();
  return *scheduler;
}

int Scheduler::num_workers() const { return pool_->total_threads(); }

void Scheduler::SetNumWorkers(int n) {
  if (n < 1) n = 1;
  if (n == pool_->total_threads()) return;
  pool_.reset();  // Join old workers before spawning new ones.
  pool_ = std::make_unique<internal::Pool>(n);
}

}  // namespace pdbscan::parallel
