// ServingScheduler — the admission / batching / caching layer between many
// clients and one EnginePool.
//
// EnginePool made concurrent queries safe; this layer makes them CHEAP and
// BOUNDED under real traffic. Four mechanisms, one scheduler:
//
//   * Bounded admission with deadlines. Every request enters a bounded
//     queue with an absolute deadline (default from ServingOptions,
//     per-request override). A full queue applies the configured overload
//     policy — refuse the newcomer (kRejectNew) or evict the oldest
//     waiter (kDropOldest) — instead of letting the backlog grow without
//     limit; a request whose deadline passes while queued (or whose
//     execution finishes after it) resolves as kTimedOut instead of
//     occupying an executor. Rejections and timeouts are counted, never
//     silent (requests_rejected / requests_timed_out).
//
//   * In-flight coalescing. The admission queue doubles as the coalescing
//     window: when an executor claims work it takes EVERY queued request
//     at once, pins one (snapshot, generation) lease for the whole batch,
//     and answers all distinct min_pts values with a single batched
//     Sweep — the saturated-counts pass that already answers a whole
//     min_pts list in one MarkCore evaluation now amortizes across
//     CLIENTS, not just within one call. Each waiter receives its own
//     Clustering, bit-identical to what a solo EnginePool::Run at the same
//     generation returns (same RunQueryFromCounts pipeline, same counts).
//
//   * Generation-keyed result cache. Results are cached under
//     (snapshot generation, epsilon, min_pts) with LRU eviction. Because
//     ReplaceIndex bumps the pool generation, a streaming update
//     invalidates precisely the stale entries — lookups from the new
//     generation can never alias an old dataset state, and retired
//     generations age out of the LRU (the query-answering-under-updates
//     discipline of Berkholz et al., applied to a cache key).
//
//   * Async submission. SubmitAsync returns a std::future<ServeResult>
//     and SubmitCallback invokes a completion callback from the executor,
//     so one OS thread can keep an arbitrary number of requests in
//     flight; Submit is the blocking convenience over the same path.
//
// Determinism-by-construction: all time handling goes through the
// injectable Clock (serving_clock.h) and ServingOptions.num_executors == 0
// selects MANUAL PUMP mode — no executor threads; the test drives the
// scheduler by calling Pump(), which performs exactly one
// expire-claim-execute round on the calling thread. Together with a
// FakeClock this makes every scheduling race — queue overflow, deadline
// expiry before/mid execution, coalescing windows — an exact, replayable
// sequence of calls (see tests/test_serving.cpp). With num_executors >= 1
// the same loop runs on internal threads against the real clock.
//
//   pdbscan::parallel::EnginePool<2> pool(index);
//   pdbscan::parallel::ServingScheduler<2> server(pool);   // 1 executor
//   auto f = server.SubmitAsync(/*min_pts=*/10);
//   pdbscan::parallel::ServeResult r = f.get();
//   if (r.status == pdbscan::parallel::ServeStatus::kOk) use(r.clustering);
//
// Threading contract: Submit*/Pump/Shutdown from any thread. The pool must
// outlive the scheduler. Stats land in the scheduler's own PipelineStats
// sink (serving_stats()); AggregateStats() adds the pool's counters.
#ifndef PDBSCAN_PARALLEL_SERVING_SCHEDULER_H_
#define PDBSCAN_PARALLEL_SERVING_SCHEDULER_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dbscan/stats.h"
#include "dbscan/types.h"
#include "parallel/engine_pool.h"
#include "parallel/serving_clock.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace pdbscan::parallel {

// What to do with a Submit that finds the admission queue full.
enum class OverloadPolicy {
  kRejectNew,   // Refuse the new request (callers see kRejected).
  kDropOldest,  // Evict the longest-waiting request, admit the new one.
};

enum class ServeStatus {
  kOk,        // clustering/generation are valid.
  kRejected,  // Refused at admission (queue full) or evicted by kDropOldest.
  kTimedOut,  // Deadline passed while queued or before delivery.
  kShutdown,  // Scheduler stopped before the request executed.
};

// One resolved request. Every waiter gets its OWN Clustering (a private
// copy even when the result came from a coalesced batch or the cache), so
// callers may move/mutate it freely.
struct ServeResult {
  ServeStatus status = ServeStatus::kShutdown;
  Clustering clustering;        // Valid iff status == kOk.
  uint64_t generation = 0;      // Snapshot generation served from (kOk only).
  size_t min_pts = 0;           // Echo of the request parameter.
  bool from_cache = false;      // Answered at admission from the LRU cache.
  bool coalesced = false;       // Shared a batched execution with others.

  bool ok() const { return status == ServeStatus::kOk; }
};

struct ServingOptions {
  // Admission-queue bound; a Submit beyond it triggers overload_policy.
  size_t queue_limit = 256;

  // Relative deadline applied to requests that do not pass their own
  // (kNeverNanos: no deadline). Absolute deadlines are stamped at
  // admission from the scheduler's clock.
  uint64_t default_timeout_nanos = SecondsToNanos(5);

  OverloadPolicy overload_policy = OverloadPolicy::kRejectNew;

  // Result-cache entries kept, LRU-evicted; 0 disables the cache (and the
  // cache_hits/cache_misses counters stay 0).
  size_t cache_capacity = 64;

  // When true an executor claims the whole queue per round and answers it
  // with one batched Sweep; when false it claims one request per round
  // (every request pays its own pipeline pass — the bench's control arm).
  bool coalescing = true;

  // Executor threads. 0 = manual pump mode: no threads, the caller drives
  // execution via Pump() (the deterministic-test configuration; sync
  // Submit would deadlock, use SubmitAsync + Pump).
  size_t num_executors = 1;

  // Time source for deadlines and idle waits (nullptr: the real steady
  // clock). Tests inject a FakeClock; must outlive the scheduler.
  Clock* clock = nullptr;

  // Test seam: invoked on the executing thread after a batch is claimed
  // and before it executes, with the batch size. Lets a fake-clock test
  // advance time "mid-execution" deterministically. Leave unset in
  // production.
  std::function<void(size_t)> on_batch_claimed;

  // Requests whose admission-to-delivery latency (scheduler clock) meets
  // this threshold get one line — plus the request's span tree when it was
  // traced — written to slow_query_sink (default: stderr). kNeverNanos
  // disables the log.
  uint64_t slow_query_nanos = kNeverNanos;
  std::function<void(const std::string&)> slow_query_sink;
};

// The scheduler's latency distributions, recorded against its (injectable)
// clock so fake-clock tests see exact values. All in nanoseconds.
struct ServingHistograms {
  telemetry::LatencyHistogram request_nanos;     // Admission -> delivery.
  telemetry::LatencyHistogram queue_wait_nanos;  // Admission -> batch claim.
  telemetry::LatencyHistogram execute_nanos;     // Lease wait + sweep.
};

template <int D>
class ServingScheduler {
 public:
  // `pool` must outlive the scheduler. `stats` is the sink for the
  // scheduler's admission/cache counters (nullptr: a private internal
  // sink, readable via serving_stats()).
  explicit ServingScheduler(EnginePool<D>& pool,
                            ServingOptions options = ServingOptions(),
                            dbscan::PipelineStats* stats = nullptr)
      : pool_(pool),
        options_(std::move(options)),
        clock_(options_.clock != nullptr ? options_.clock : &Clock::Real()),
        stats_(stats != nullptr ? stats : &own_stats_) {
    executors_.reserve(options_.num_executors);
    for (size_t i = 0; i < options_.num_executors; ++i) {
      executors_.emplace_back([this]() { ExecutorLoop(); });
    }
  }

  ServingScheduler(const ServingScheduler&) = delete;
  ServingScheduler& operator=(const ServingScheduler&) = delete;

  ~ServingScheduler() { Shutdown(); }

  // Asynchronous submission with the default timeout; the future resolves
  // with a ServeResult (never a broken promise). Throws std::invalid_argument
  // for min_pts == 0 — parameter validation is a caller bug, not overload.
  std::future<ServeResult> SubmitAsync(size_t min_pts) {
    return SubmitAsync(min_pts, options_.default_timeout_nanos);
  }

  // Per-request relative timeout override (kNeverNanos: no deadline).
  std::future<ServeResult> SubmitAsync(size_t min_pts,
                                       uint64_t timeout_nanos) {
    Request req;
    req.min_pts = min_pts;
    std::future<ServeResult> future = req.promise.get_future();
    Admit(std::move(req), min_pts, timeout_nanos);
    return future;
  }

  // Callback flavor: `done` runs exactly once — on the executor for
  // executed/expired requests, on the submitting thread for cache hits,
  // rejections, and shutdown. Keep callbacks cheap; they run on the
  // serving path.
  void SubmitCallback(size_t min_pts, std::function<void(ServeResult)> done) {
    SubmitCallback(min_pts, options_.default_timeout_nanos, std::move(done));
  }

  void SubmitCallback(size_t min_pts, uint64_t timeout_nanos,
                      std::function<void(ServeResult)> done) {
    Request req;
    req.min_pts = min_pts;
    req.callback = std::move(done);
    Admit(std::move(req), min_pts, timeout_nanos);
  }

  // Blocking submission (requires num_executors >= 1; in manual pump mode
  // this would wait for a Pump that never comes).
  ServeResult Submit(size_t min_pts) { return SubmitAsync(min_pts).get(); }
  ServeResult Submit(size_t min_pts, uint64_t timeout_nanos) {
    return SubmitAsync(min_pts, timeout_nanos).get();
  }

  // Convenience that unwraps kOk or throws (LeaseTimeout for kTimedOut,
  // std::runtime_error otherwise) — the drop-in replacement for
  // EnginePool::Run in serving code.
  Clustering Run(size_t min_pts) {
    ServeResult r = Submit(min_pts);
    switch (r.status) {
      case ServeStatus::kOk:
        return std::move(r.clustering);
      case ServeStatus::kTimedOut:
        throw LeaseTimeout("serving request timed out");
      case ServeStatus::kRejected:
        throw std::runtime_error("serving request rejected (queue full)");
      case ServeStatus::kShutdown:
        throw std::runtime_error("serving scheduler is shut down");
    }
    throw std::logic_error("unreachable");
  }

  // Manual pump (num_executors == 0): performs one expire-claim-execute
  // round on the calling thread — resolves every queued request whose
  // deadline has passed, then executes one batch (the whole queue under
  // coalescing, else one request). Returns the number of requests
  // resolved; 0 means the queue was empty. Safe to call with executors
  // running (it simply competes for the same queue).
  size_t Pump() {
    std::vector<Request> expired;
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ExtractExpiredLocked(expired);
      if (!stopped_) ClaimBatchLocked(batch);
    }
    ResolveExpired(expired);
    if (!batch.empty()) ExecuteBatch(batch);
    return expired.size() + batch.size();
  }

  // Stops admission, fails queued requests with kShutdown, joins the
  // executors. Idempotent; the destructor calls it.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : executors_) t.join();
    executors_.clear();
    std::vector<Request> orphans;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (Request& r : queue_) orphans.push_back(std::move(r));
      queue_.clear();
    }
    for (Request& r : orphans) {
      ServeResult result;
      result.status = ServeStatus::kShutdown;
      result.min_pts = r.min_pts;
      Deliver(r, std::move(result));
    }
  }

  // Requests currently queued (not yet claimed by an executor).
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  // The scheduler's admission/cache counters (the internal sink when no
  // external one was given at construction).
  const dbscan::PipelineStats& serving_stats() const { return *stats_; }

  // Scheduler counters plus everything the pool aggregates (build, pool
  // admission, per-context query counters). Exact when quiescent.
  void AggregateStats(dbscan::PipelineStats& out) const {
    out.MergeFrom(*stats_);
    pool_.AggregateStats(out);
  }

  const ServingOptions& options() const { return options_; }

  // Latency histograms (request / queue-wait / execute), recorded against
  // the scheduler clock. Snapshot() them for export.
  const ServingHistograms& histograms() const { return histograms_; }

 private:
  struct Request {
    size_t min_pts = 0;
    uint64_t deadline_nanos = kNeverNanos;
    // Trace context captured from the admitting thread (0 = untraced):
    // executor-side spans re-parent under parent_span_id so the request's
    // span tree stays well-nested across the thread hop.
    uint64_t trace_id = 0;
    uint64_t parent_span_id = 0;
    uint64_t admit_steady_nanos = 0;  // telemetry::NowNanos at admission.
    uint64_t admit_clock_nanos = 0;   // Scheduler clock at admission.
    std::promise<ServeResult> promise;
    std::function<void(ServeResult)> callback;
  };

  // (generation, epsilon, min_pts) — the full serving identity of a
  // result. Generation alone already pins the snapshot (and with it
  // epsilon); epsilon is kept in the key so an entry is self-describing
  // and can never alias across pools or future multi-eps serving.
  struct CacheKey {
    uint64_t generation;
    uint64_t eps_bits;
    uint64_t min_pts;
    bool operator==(const CacheKey& o) const {
      return generation == o.generation && eps_bits == o.eps_bits &&
             min_pts == o.min_pts;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      uint64_t h = k.generation * 0x9e3779b97f4a7c15ull;
      h ^= k.eps_bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h ^= k.min_pts + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct CacheEntry {
    std::shared_ptr<const Clustering> result;
    std::list<CacheKey>::iterator lru_pos;
  };

  static uint64_t EpsBits(double eps) {
    uint64_t bits;
    std::memcpy(&bits, &eps, sizeof(bits));
    return bits;
  }

  // Admission: validate, try the cache, then queue under the bound. Every
  // submit resolves as exactly one of {admitted, rejected}; admitted cache
  // hits complete on the spot.
  void Admit(Request&& req, size_t min_pts, uint64_t timeout_nanos) {
    if (min_pts == 0) throw std::invalid_argument("min_pts must be positive");
    const uint64_t now = clock_->NowNanos();
    req.deadline_nanos =
        timeout_nanos == kNeverNanos ? kNeverNanos : now + timeout_nanos;
    req.admit_clock_nanos = now;
    if (telemetry::TraceEnabled()) {
      // Ambient propagation: whatever trace the admitting thread is inside
      // (a net request, a CLI --trace run) rides along with the request.
      req.trace_id = telemetry::CurrentTraceId();
      req.parent_span_id = telemetry::CurrentSpanId();
      req.admit_steady_nanos = telemetry::NowNanos();
    }

    ServeResult immediate;
    bool resolve_now = false;
    Request victim;
    bool have_victim = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) {
        immediate.status = ServeStatus::kShutdown;
        immediate.min_pts = min_pts;
        resolve_now = true;
      } else if (options_.cache_capacity > 0 &&
                 LookupCacheLocked(min_pts, immediate)) {
        stats_->requests_admitted.fetch_add(1, std::memory_order_relaxed);
        stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        resolve_now = true;
      } else {
        if (options_.cache_capacity > 0) {
          stats_->cache_misses.fetch_add(1, std::memory_order_relaxed);
        }
        if (queue_.size() >= options_.queue_limit) {
          if (options_.overload_policy == OverloadPolicy::kRejectNew) {
            stats_->requests_rejected.fetch_add(1, std::memory_order_relaxed);
            immediate.status = ServeStatus::kRejected;
            immediate.min_pts = min_pts;
            resolve_now = true;
          } else {
            victim = std::move(queue_.front());
            queue_.pop_front();
            have_victim = true;
            stats_->requests_rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (!resolve_now) {
          queue_.push_back(std::move(req));
          stats_->requests_admitted.fetch_add(1, std::memory_order_relaxed);
          UpdateQueuePeakLocked();
        }
      }
    }
    if (have_victim) {
      ServeResult dropped;
      dropped.status = ServeStatus::kRejected;
      dropped.min_pts = victim.min_pts;
      Deliver(victim, std::move(dropped));
    }
    if (resolve_now) {
      Deliver(req, std::move(immediate));
    } else {
      work_cv_.notify_one();
    }
  }

  // mu_ held. Fills `out` (status kOk, from_cache) on a hit at the pool's
  // CURRENT generation and refreshes the entry's LRU position.
  bool LookupCacheLocked(size_t min_pts, ServeResult& out) {
    const auto [index, generation] = pool_.SnapshotAndGeneration();
    const CacheKey key{generation, EpsBits(index->epsilon()), min_pts};
    auto it = cache_.find(key);
    if (it == cache_.end()) return false;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    out.status = ServeStatus::kOk;
    out.clustering = *it->second.result;  // The waiter's own copy.
    out.generation = generation;
    out.min_pts = min_pts;
    out.from_cache = true;
    return true;
  }

  // mu_ held. Inserts/refreshes one entry and LRU-evicts past capacity.
  void InsertCacheLocked(uint64_t generation, uint64_t eps_bits,
                         size_t min_pts,
                         std::shared_ptr<const Clustering> result) {
    if (options_.cache_capacity == 0) return;
    const CacheKey key{generation, eps_bits, min_pts};
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      it->second.result = std::move(result);
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return;
    }
    lru_.push_front(key);
    cache_.emplace(key, CacheEntry{std::move(result), lru_.begin()});
    while (cache_.size() > options_.cache_capacity) {
      cache_.erase(lru_.back());
      lru_.pop_back();
    }
  }

  void UpdateQueuePeakLocked() {
    telemetry::AtomicMax(stats_->queue_depth_peak, queue_.size());
  }

  // mu_ held: moves every queued request whose deadline has passed into
  // `out`, preserving arrival order among survivors.
  void ExtractExpiredLocked(std::vector<Request>& out) {
    const uint64_t now = clock_->NowNanos();
    for (size_t i = 0; i < queue_.size();) {
      if (queue_[i].deadline_nanos != kNeverNanos &&
          queue_[i].deadline_nanos <= now) {
        out.push_back(std::move(queue_[i]));
        queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  // mu_ held: claims the coalescing window — the whole queue, or just the
  // front request with coalescing off.
  void ClaimBatchLocked(std::vector<Request>& batch) {
    if (queue_.empty()) return;
    const size_t take = options_.coalescing ? queue_.size() : 1;
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }

  void ResolveExpired(std::vector<Request>& expired) {
    for (Request& r : expired) {
      stats_->requests_timed_out.fetch_add(1, std::memory_order_relaxed);
      ServeResult result;
      result.status = ServeStatus::kTimedOut;
      result.min_pts = r.min_pts;
      Deliver(r, std::move(result));
    }
  }

  // Executes one claimed batch: pin one lease (one snapshot, one
  // generation) for everyone, answer all distinct min_pts with a single
  // Sweep, publish to the cache, deliver per-waiter copies. Deadlines are
  // re-checked at delivery — an execution that outlives a request's
  // deadline resolves it kTimedOut even though the work ran.
  void ExecuteBatch(std::vector<Request>& batch) {
    if (options_.on_batch_claimed) options_.on_batch_claimed(batch.size());

    const bool tracing = telemetry::TraceEnabled();
    const uint64_t execute_start = clock_->NowNanos();
    // The queue wait of every traced request ends here, at batch claim.
    // Recorded manually (the interval straddles the admitting thread and
    // this executor), parented to the request's own root span. The
    // executor's working spans below adopt the FIRST traced request's
    // context — a coalesced batch does one sweep, so it can only be
    // attributed to one trace.
    uint64_t batch_trace = 0;
    uint64_t batch_parent = 0;
    if (tracing) {
      const uint64_t now_steady = telemetry::NowNanos();
      for (const Request& r : batch) {
        if (r.trace_id == 0) continue;
        telemetry::RecordSpan("queue_wait", r.trace_id, r.parent_span_id,
                              r.admit_steady_nanos, now_steady);
        if (batch_trace == 0) {
          batch_trace = r.trace_id;
          batch_parent = r.parent_span_id;
        }
      }
    }
    for (const Request& r : batch) {
      histograms_.queue_wait_nanos.Record(execute_start -
                                          r.admit_clock_nanos);
    }
    telemetry::ScopedTraceContext trace_ctx(batch_trace, batch_parent);

    // Wait for a context no longer than the batch's latest deadline —
    // if the pool stays exhausted past it, nobody in the batch is still
    // servable anyway.
    uint64_t latest = 0;
    for (const Request& r : batch) {
      latest = r.deadline_nanos == kNeverNanos
                   ? kNeverNanos
                   : std::max(latest, r.deadline_nanos);
      if (latest == kNeverNanos) break;
    }
    typename EnginePool<D>::Lease lease = [&]() {
      telemetry::TraceSpan span("lease_acquire");
      return pool_.TryAcquireLeaseUntil(latest);
    }();
    if (!lease) {
      ResolveExpired(batch);
      return;
    }
    const uint64_t generation = lease.generation();
    const uint64_t eps_bits = EpsBits(lease.index()->epsilon());

    std::vector<size_t> distinct;
    distinct.reserve(batch.size());
    for (const Request& r : batch) distinct.push_back(r.min_pts);
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());

    std::vector<Clustering> swept = [&]() {
      telemetry::TraceSpan span("coalesced_sweep");
      return lease.Sweep(distinct);
    }();
    lease = typename EnginePool<D>::Lease();  // Free the context promptly.
    histograms_.execute_nanos.Record(clock_->NowNanos() - execute_start);

    std::unordered_map<size_t, std::shared_ptr<const Clustering>> by_minpts;
    by_minpts.reserve(distinct.size());
    for (size_t i = 0; i < distinct.size(); ++i) {
      by_minpts.emplace(distinct[i], std::make_shared<const Clustering>(
                                         std::move(swept[i])));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [m, result] : by_minpts) {
        InsertCacheLocked(generation, eps_bits, m, result);
      }
    }
    if (batch.size() > 1) {
      stats_->requests_coalesced.fetch_add(batch.size() - 1,
                                           std::memory_order_relaxed);
    }

    const uint64_t now = clock_->NowNanos();
    for (Request& r : batch) {
      ServeResult result;
      result.min_pts = r.min_pts;
      if (r.deadline_nanos != kNeverNanos && r.deadline_nanos <= now) {
        stats_->requests_timed_out.fetch_add(1, std::memory_order_relaxed);
        result.status = ServeStatus::kTimedOut;
      } else {
        result.status = ServeStatus::kOk;
        result.clustering = *by_minpts.at(r.min_pts);  // Waiter's own copy.
        result.generation = generation;
        result.coalesced = batch.size() > 1;
      }
      Deliver(r, std::move(result));
    }
  }

  // Resolves one request exactly once: future first, then the callback
  // (callbacks run without scheduler locks held).
  void Deliver(Request& req, ServeResult&& result) {
    if (req.admit_clock_nanos != 0) {
      const uint64_t latency = clock_->NowNanos() - req.admit_clock_nanos;
      if (result.status == ServeStatus::kOk) {
        histograms_.request_nanos.Record(latency);
      }
      if (latency >= options_.slow_query_nanos) LogSlowQuery(req, latency);
    }
    if (req.callback) {
      ServeResult copy = result;
      req.promise.set_value(std::move(result));
      req.callback(std::move(copy));
    } else {
      req.promise.set_value(std::move(result));
    }
  }

  void LogSlowQuery(const Request& req, uint64_t latency_nanos) {
    char head[160];
    std::snprintf(head, sizeof(head),
                  "slow query: min_pts=%zu latency_ms=%.3f trace_id=%llu\n",
                  req.min_pts, static_cast<double>(latency_nanos) / 1e6,
                  static_cast<unsigned long long>(req.trace_id));
    std::string msg = head;
    if (req.trace_id != 0) {
      const std::vector<telemetry::SpanRecord> spans =
          telemetry::GlobalTraceRing().CollectTrace(req.trace_id);
      if (!spans.empty()) msg += telemetry::FormatSpanTree(spans);
    }
    if (options_.slow_query_sink) {
      options_.slow_query_sink(msg);
    } else {
      std::fputs(msg.c_str(), stderr);
    }
  }

  void ExecutorLoop() {
    for (;;) {
      std::vector<Request> expired;
      std::vector<Request> batch;
      {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
          ExtractExpiredLocked(expired);
          if (!expired.empty() || stopped_) break;
          if (!queue_.empty()) {
            ClaimBatchLocked(batch);
            break;
          }
          // Idle executors park without a deadline: queued work always
          // either has an executor awake (claimed immediately) or will be
          // deadline-checked when one returns here — and Submit notifies.
          clock_->WaitUntil(lock, work_cv_, kNeverNanos);
        }
        if (stopped_ && expired.empty() && batch.empty()) return;
      }
      ResolveExpired(expired);
      if (!batch.empty()) ExecuteBatch(batch);
    }
  }

  EnginePool<D>& pool_;
  const ServingOptions options_;
  Clock* clock_;
  dbscan::PipelineStats own_stats_;
  dbscan::PipelineStats* stats_;
  ServingHistograms histograms_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  bool stopped_ = false;
  std::deque<Request> queue_;
  std::list<CacheKey> lru_;  // Front = most recently used.
  std::unordered_map<CacheKey, CacheEntry, CacheKeyHash> cache_;
  std::vector<std::thread> executors_;
};

}  // namespace pdbscan::parallel

#endif  // PDBSCAN_PARALLEL_SERVING_SCHEDULER_H_
