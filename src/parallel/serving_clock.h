// Injectable time source for the serving layer — the seam that turns
// scheduling races into reproducible unit tests.
//
// Every time-dependent decision in the serving stack (deadline expiry,
// bounded lease waits, admission-queue timeouts) reads time and blocks
// exclusively through a Clock, never through std::chrono or raw
// condition_variable timed waits. Production code uses SystemClock (the
// process-wide monotonic clock); tests inject a FakeClock whose time only
// moves when the test calls Advance(), so "the deadline passed while the
// request sat in the queue" is a deterministic sequence of calls rather
// than a sleep-and-hope timing assertion. No test in the serving suites
// contains a real sleep.
//
// The waiting contract mirrors condition_variable: a caller holds a lock,
// calls WaitUntil(lock, cv, deadline), and loops on its own predicate —
// WaitUntil may return spuriously (it reports kTimeout only when the
// clock's now has actually reached the deadline). SystemClock maps this to
// cv.wait_until; FakeClock parks the caller until Advance() moves time or
// someone notifies the cv directly.
//
// FakeClock wake-up protocol: WaitUntil registers the caller's (mutex, cv)
// pair while the caller still holds the mutex; Advance() bumps now, then
// acquires each registered waiter's mutex (briefly, after releasing the
// registry lock — no lock-order cycle with callers) before notifying, so a
// waiter that checked the time before blocking cannot miss the wake-up.
// The registered mutex/cv objects must outlive concurrent Advance() calls
// — true for the intended users, whose waits live inside long-lived pool /
// scheduler objects.
#ifndef PDBSCAN_PARALLEL_SERVING_CLOCK_H_
#define PDBSCAN_PARALLEL_SERVING_CLOCK_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

namespace pdbscan::parallel {

// Monotonic nanoseconds. kNeverNanos means "no deadline" — waits forever.
inline constexpr uint64_t kNeverNanos = std::numeric_limits<uint64_t>::max();

inline constexpr uint64_t MillisToNanos(uint64_t ms) { return ms * 1000000ull; }
inline constexpr uint64_t SecondsToNanos(uint64_t s) {
  return s * 1000000000ull;
}

class Clock {
 public:
  enum class WaitStatus { kNotified, kTimeout };

  virtual ~Clock() = default;

  // Monotonic now, in nanoseconds. Comparable only against values from the
  // same clock instance (SystemClock uses a process-wide epoch).
  virtual uint64_t NowNanos() const = 0;

  // Blocks until `cv` is notified or now reaches `deadline_nanos`
  // (kNeverNanos: until notified). `lock` must be held, as for
  // condition_variable::wait. May wake spuriously with kNotified; callers
  // loop on their own predicate. Returns kTimeout only when
  // NowNanos() >= deadline_nanos.
  virtual WaitStatus WaitUntil(std::unique_lock<std::mutex>& lock,
                               std::condition_variable& cv,
                               uint64_t deadline_nanos) = 0;

  // The process-wide real (steady) clock.
  static Clock& Real();
};

// Production clock: std::chrono::steady_clock behind the Clock interface.
class SystemClock : public Clock {
 public:
  uint64_t NowNanos() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  WaitStatus WaitUntil(std::unique_lock<std::mutex>& lock,
                       std::condition_variable& cv,
                       uint64_t deadline_nanos) override {
    if (deadline_nanos == kNeverNanos) {
      cv.wait(lock);
      return WaitStatus::kNotified;
    }
    if (NowNanos() >= deadline_nanos) return WaitStatus::kTimeout;
    const auto until = std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(deadline_nanos));
    return cv.wait_until(lock, until) == std::cv_status::timeout
               ? WaitStatus::kTimeout
               : WaitStatus::kNotified;
  }
};

inline Clock& Clock::Real() {
  static SystemClock* clock = new SystemClock();
  return *clock;
}

// Test clock: time starts at a fixed epoch and moves only via Advance().
// Thread-safe; see the header comment for the wake-up protocol.
class FakeClock : public Clock {
 public:
  explicit FakeClock(uint64_t start_nanos = SecondsToNanos(1))
      : now_nanos_(start_nanos) {}

  uint64_t NowNanos() const override {
    std::lock_guard<std::mutex> guard(mu_);
    return now_nanos_;
  }

  WaitStatus WaitUntil(std::unique_lock<std::mutex>& lock,
                       std::condition_variable& cv,
                       uint64_t deadline_nanos) override {
    {
      std::lock_guard<std::mutex> guard(mu_);
      if (deadline_nanos != kNeverNanos && now_nanos_ >= deadline_nanos) {
        return WaitStatus::kTimeout;
      }
      waiters_.push_back(Waiter{lock.mutex(), &cv});
      waiter_count_cv_.notify_all();
    }
    // One wait per call: the caller's predicate loop supplies the retries,
    // exactly as with condition_variable spurious wake-ups.
    cv.wait(lock);
    std::lock_guard<std::mutex> guard(mu_);
    for (size_t i = 0; i < waiters_.size(); ++i) {
      if (waiters_[i].mu == lock.mutex() && waiters_[i].cv == &cv) {
        waiters_.erase(waiters_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
    waiter_count_cv_.notify_all();
    return deadline_nanos != kNeverNanos && now_nanos_ >= deadline_nanos
               ? WaitStatus::kTimeout
               : WaitStatus::kNotified;
  }

  // Moves time forward and wakes every registered waiter so it re-checks
  // its predicate/deadline against the new now.
  void Advance(uint64_t nanos) {
    std::vector<Waiter> to_wake;
    {
      std::lock_guard<std::mutex> guard(mu_);
      now_nanos_ += nanos;
      to_wake = waiters_;
    }
    // Acquire each waiter's mutex before notifying (then release; the
    // registry lock is NOT held here): a registrant that has not yet
    // entered cv.wait still holds its mutex, so this acquisition orders
    // the notify after its wait begins — no lost wake-ups.
    for (const Waiter& w : to_wake) {
      { std::lock_guard<std::mutex> order(*w.mu); }
      w.cv->notify_all();
    }
  }

  void AdvanceMillis(uint64_t ms) { Advance(MillisToNanos(ms)); }

  // Test rendezvous (not a timing wait): blocks until at least `n` calls
  // are parked inside WaitUntil. Lets a test deterministically order
  // "thread B is waiting" before "Advance past B's deadline".
  void BlockUntilWaiters(size_t n) {
    std::unique_lock<std::mutex> guard(mu_);
    waiter_count_cv_.wait(guard, [&]() { return waiters_.size() >= n; });
  }

  size_t waiter_count() const {
    std::lock_guard<std::mutex> guard(mu_);
    return waiters_.size();
  }

 private:
  struct Waiter {
    std::mutex* mu;
    std::condition_variable* cv;
  };

  mutable std::mutex mu_;
  uint64_t now_nanos_;
  std::vector<Waiter> waiters_;
  std::condition_variable waiter_count_cv_;
};

}  // namespace pdbscan::parallel

#endif  // PDBSCAN_PARALLEL_SERVING_CLOCK_H_
