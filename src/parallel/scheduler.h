// Fork-join work-stealing scheduler.
//
// This is the runtime substrate standing in for the Cilk Plus scheduler used
// by the paper (Blumofe & Leiserson [13], Leiserson [66]). It provides the
// two primitives the paper's algorithms are written in terms of:
//
//   * parallel_for(lo, hi, f)  — data-parallel loop ("par-for" in the paper's
//     pseudocode), split into grains executed by a pool of workers.
//   * fork_join(f1, f2)        — binary fork ("spawn/sync"), the building
//     block for divide-and-conquer (samplesort, parallel merge, quadtree
//     construction, wavefront construction).
//
// Design notes:
//   * P-1 worker threads plus the submitting thread; a thread blocked on a
//     join *helps* by executing queued tasks, so nested parallelism cannot
//     deadlock (help-first work stealing).
//   * With num_workers() == 1 there are no threads at all and every primitive
//     degenerates to its serial loop, which keeps single-threaded baselines
//     honest (no scheduling overhead in "serial" measurements).
//   * The pool size is taken from the PDBSCAN_NUM_THREADS environment
//     variable (default: hardware concurrency) and can be changed at runtime
//     with set_num_workers() while no parallel work is in flight.
#ifndef PDBSCAN_PARALLEL_SCHEDULER_H_
#define PDBSCAN_PARALLEL_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

namespace pdbscan::parallel {

namespace internal {

// A unit of queued work. `remaining` is the join counter shared with whoever
// is waiting on this task's completion.
struct Task {
  std::function<void()> fn;
  std::atomic<size_t>* remaining = nullptr;
};

class Pool {
 public:
  explicit Pool(int total_threads);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  // Total parallelism: worker threads + the submitting thread.
  int total_threads() const { return total_threads_; }

  // Enqueues `count` tasks created by `make(i)` for i in [0, count) and
  // decrements `*remaining` as each completes. The caller must have set
  // `*remaining` beforehand.
  void Submit(Task task);

  // Runs queued tasks until *remaining == 0. Called by threads blocked on a
  // join; never sleeps while tasks might still be pending for this join.
  void WaitFor(std::atomic<size_t>& remaining);

  // Executes one queued task if available. Returns false if none was found.
  bool RunOne();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int total_threads_;
};

}  // namespace internal

// Process-wide scheduler singleton.
class Scheduler {
 public:
  // Returns the global scheduler, creating it on first use with
  // PDBSCAN_NUM_THREADS (or hardware concurrency) threads.
  static Scheduler& Get();

  // Total parallelism (worker threads + caller).
  int num_workers() const;

  // Re-creates the pool with `n` total threads (n >= 1). Must not be called
  // while parallel work is running.
  void SetNumWorkers(int n);

  // Parallel loop over [lo, hi). `f` is invoked once per index. `grain` is
  // the largest contiguous block executed serially; 0 picks
  // max(1, (hi-lo) / (8 * num_workers())).
  template <typename F>
  void ParallelFor(size_t lo, size_t hi, F&& f, size_t grain = 0) {
    if (hi <= lo) return;
    const size_t n = hi - lo;
    const int p = num_workers();
    if (p == 1 || n == 1) {
      for (size_t i = lo; i < hi; ++i) f(i);
      return;
    }
    if (grain == 0) grain = n / (8 * static_cast<size_t>(p)) + 1;
    const size_t num_chunks = (n + grain - 1) / grain;
    if (num_chunks <= 1) {
      for (size_t i = lo; i < hi; ++i) f(i);
      return;
    }
    std::atomic<size_t> remaining(num_chunks - 1);
    for (size_t c = 1; c < num_chunks; ++c) {
      const size_t b = lo + c * grain;
      const size_t e = b + grain < hi ? b + grain : hi;
      pool_->Submit(internal::Task{
          [&f, b, e]() {
            for (size_t i = b; i < e; ++i) f(i);
          },
          &remaining});
    }
    // The caller runs the first chunk itself, then helps drain the rest.
    const size_t first_end = lo + grain < hi ? lo + grain : hi;
    for (size_t i = lo; i < first_end; ++i) f(i);
    pool_->WaitFor(remaining);
  }

  // Runs f1 and f2 potentially in parallel; returns when both are done.
  template <typename F1, typename F2>
  void ForkJoin(F1&& f1, F2&& f2) {
    if (num_workers() == 1) {
      f1();
      f2();
      return;
    }
    std::atomic<size_t> remaining(1);
    pool_->Submit(internal::Task{[&f1]() { f1(); }, &remaining});
    f2();
    pool_->WaitFor(remaining);
  }

 private:
  Scheduler();
  std::unique_ptr<internal::Pool> pool_;
};

// Convenience free functions mirroring the paper's pseudocode.
template <typename F>
inline void parallel_for(size_t lo, size_t hi, F&& f, size_t grain = 0) {
  Scheduler::Get().ParallelFor(lo, hi, std::forward<F>(f), grain);
}

template <typename F1, typename F2>
inline void fork_join(F1&& f1, F2&& f2) {
  Scheduler::Get().ForkJoin(std::forward<F1>(f1), std::forward<F2>(f2));
}

inline int num_workers() { return Scheduler::Get().num_workers(); }

inline void set_num_workers(int n) { Scheduler::Get().SetNumWorkers(n); }

// RAII helper that forces a worker count for a scope (used by tests and the
// thread-scaling benchmarks).
class ScopedNumWorkers {
 public:
  explicit ScopedNumWorkers(int n) : saved_(num_workers()) {
    set_num_workers(n);
  }
  ~ScopedNumWorkers() { set_num_workers(saved_); }
  ScopedNumWorkers(const ScopedNumWorkers&) = delete;
  ScopedNumWorkers& operator=(const ScopedNumWorkers&) = delete;

 private:
  int saved_;
};

}  // namespace pdbscan::parallel

#endif  // PDBSCAN_PARALLEL_SCHEDULER_H_
