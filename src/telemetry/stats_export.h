// Canonical export table for PipelineStats: one place that maps every
// counter, gauge and stage timer onto telemetry metric names, so the
// Prometheus and JSON surfaces (net kStatsRequest, CLI, bench) all agree
// on naming without each layer re-registering its own struct.
//
// Counters come out as monotonic counters, the two max-merged fields
// (queue_depth_peak, kernel_dispatch_level) as gauges, and the per-stage
// second timers as float counters named *_seconds (monotonic while the
// sink is never Reset(), which is how serving uses them).
#ifndef PDBSCAN_TELEMETRY_STATS_EXPORT_H_
#define PDBSCAN_TELEMETRY_STATS_EXPORT_H_

#include <atomic>
#include <vector>

#include "dbscan/stats.h"
#include "telemetry/metrics.h"

namespace pdbscan::telemetry {

inline void AppendPipelineStats(const dbscan::PipelineStats& s,
                                std::vector<MetricValue>& out) {
  const auto c = [&out](const char* name, const std::atomic<size_t>& v) {
    AppendCounter(out, name, v.load(std::memory_order_relaxed));
  };
  const auto sec = [&out](const char* name, const std::atomic<double>& v) {
    MetricValue mv;
    mv.name = name;
    mv.kind = MetricValue::Kind::kCounter;
    mv.value = v.load(std::memory_order_relaxed);
    out.push_back(std::move(mv));
  };

  c("connectivity_queries", s.connectivity_queries);
  c("pruned_queries", s.pruned_queries);
  c("successful_queries", s.successful_queries);
  c("cells_built", s.cells_built);
  c("cells_reused", s.cells_reused);
  c("counts_built", s.counts_built);
  c("counts_reused", s.counts_reused);
  c("cells_rebuilt", s.cells_rebuilt);
  c("cells_retained", s.cells_retained);
  c("snapshots_published", s.snapshots_published);
  c("shards_built", s.shards_built);
  c("shard_interior_cells", s.shard_interior_cells);
  c("shard_boundary_cells", s.shard_boundary_cells);
  c("shard_seam_links", s.shard_seam_links);
  c("snapshot_bytes_written", s.snapshot_bytes_written);
  c("snapshot_bytes_read", s.snapshot_bytes_read);
  c("journal_records_replayed", s.journal_records_replayed);
  c("requests_admitted", s.requests_admitted);
  c("requests_rejected", s.requests_rejected);
  c("requests_timed_out", s.requests_timed_out);
  c("requests_coalesced", s.requests_coalesced);
  c("cache_hits", s.cache_hits);
  c("cache_misses", s.cache_misses);
  AppendGauge(out, "queue_depth_peak",
              static_cast<double>(
                  s.queue_depth_peak.load(std::memory_order_relaxed)));
  c("kernel_batches", s.kernel_batches);
  c("kernel_points_pruned_box", s.kernel_points_pruned_box);
  c("kernel_points_pruned_norm", s.kernel_points_pruned_norm);
  AppendGauge(out, "kernel_dispatch_level",
              static_cast<double>(
                  s.kernel_dispatch_level.load(std::memory_order_relaxed)));
  sec("snapshot_load_seconds", s.snapshot_load_seconds);
  sec("build_cells_seconds", s.build_cells_seconds);
  sec("mark_core_seconds", s.mark_core_seconds);
  sec("cluster_core_seconds", s.cluster_core_seconds);
  sec("cluster_border_seconds", s.cluster_border_seconds);
  sec("finalize_seconds", s.finalize_seconds);
  sec("shard_merge_seconds", s.shard_merge_seconds);
}

}  // namespace pdbscan::telemetry

#endif  // PDBSCAN_TELEMETRY_STATS_EXPORT_H_
