// Telemetry metrics: named counters, max-merged gauges and log2-bucketed
// latency histograms, plus the registry + render surface that turns them
// into Prometheus text or JSON.
//
// Design constraints, in priority order:
//
//   * Recording must be safe from any thread and nearly free: every value
//     is a relaxed std::atomic (histograms are fixed atomic arrays — no
//     allocation, no locks on the record path).
//   * Everything is MERGEABLE the way PipelineStats already is: counters
//     and histogram buckets add, gauges take the max (the shared AtomicMax
//     below is the one max-merge implementation; dbscan/stats.h and the
//     serving scheduler call it instead of repeating the CAS loop).
//   * Export is pull-based: MetricsRegistry::Collect() walks owned metrics
//     plus registered sources and produces a flat, name-sorted
//     std::vector<MetricValue> snapshot that RenderPrometheus/RenderJson
//     serialize. Sources let existing stat structs (PipelineStats,
//     ServerStats, replication counters) publish through the same naming
//     scheme without being rewritten — see telemetry/stats_export.h.
//
// Histogram contract (pinned by tests/test_telemetry.cpp against a scalar
// reference): bucket b holds every value v with std::bit_width(v) == b,
// clamped to the last bucket — i.e. bucket 0 is exactly {0}, bucket b>0 is
// [2^(b-1), 2^b). PercentileNanos(q) returns the inclusive upper bound of
// the bucket containing the ceil(q * count)-th smallest recorded value.
#ifndef PDBSCAN_TELEMETRY_METRICS_H_
#define PDBSCAN_TELEMETRY_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pdbscan::telemetry {

// The one shared max-merge: raises `slot` to at least `value` with relaxed
// CAS. Every gauge aggregation path (PipelineStats::MergeFrom, the serving
// scheduler's queue peak, MaxGauge itself) goes through here.
template <typename T>
inline void AtomicMax(std::atomic<T>& slot, T value) {
  T cur = slot.load(std::memory_order_relaxed);
  while (value > cur && !slot.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void MergeFrom(const Counter& other) { Add(other.value()); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// High-water-mark gauge: Update raises, merge takes the max.
class MaxGauge {
 public:
  void Update(uint64_t observed) { AtomicMax(value_, observed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void MergeFrom(const MaxGauge& other) { Update(other.value()); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Immutable histogram state, extracted with Snapshot(). Percentiles are
// computed here so the same code serves live histograms and wire-shipped
// snapshots (bench records, stats responses).
struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 64;
  std::array<uint64_t, kNumBuckets> buckets{};  // buckets[b]: bit_width == b.
  uint64_t count = 0;
  uint64_t sum_nanos = 0;

  // Inclusive upper bound of bucket b: 0 for b == 0, else 2^b - 1 (the last
  // bucket absorbs everything above).
  static uint64_t BucketUpperNanos(size_t b) {
    if (b == 0) return 0;
    if (b >= kNumBuckets - 1) return ~uint64_t{0};
    return (uint64_t{1} << b) - 1;
  }

  // Upper bound of the bucket holding the ceil(q * count)-th smallest
  // recorded value (q in [0, 1]); 0 when empty.
  uint64_t PercentileNanos(double q) const {
    if (count == 0) return 0;
    const double target = q * static_cast<double>(count);
    uint64_t rank = static_cast<uint64_t>(std::ceil(target));
    if (rank < 1) rank = 1;
    if (rank > count) rank = count;
    uint64_t cumulative = 0;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      cumulative += buckets[b];
      if (cumulative >= rank) return BucketUpperNanos(b);
    }
    return BucketUpperNanos(kNumBuckets - 1);
  }

  double MeanNanos() const {
    return count == 0
               ? 0.0
               : static_cast<double>(sum_nanos) / static_cast<double>(count);
  }

  void MergeFrom(const HistogramSnapshot& other) {
    for (size_t b = 0; b < kNumBuckets; ++b) buckets[b] += other.buckets[b];
    count += other.count;
    sum_nanos += other.sum_nanos;
  }
};

// Fixed-bucket log2 latency histogram: a lock-free array of relaxed
// atomics. Record() is two fetch_adds and a bit_width — safe from any
// thread, no allocation, mergeable bucket-wise.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  static size_t BucketIndex(uint64_t nanos) {
    const size_t b = static_cast<size_t>(std::bit_width(nanos));
    return b < kNumBuckets ? b : kNumBuckets - 1;
  }

  void Record(uint64_t nanos) {
    buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
    sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  uint64_t TotalCount() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }

  void MergeFrom(const LatencyHistogram& other) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
      if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
    sum_nanos_.fetch_add(other.sum_nanos_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_nanos_.store(0, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
      snap.count += snap.buckets[b];
    }
    snap.sum_nanos = sum_nanos_.load(std::memory_order_relaxed);
    return snap;
  }

  uint64_t PercentileNanos(double q) const { return Snapshot().PercentileNanos(q); }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_nanos_{0};
};

// One collected metric, ready to render. Counter/gauge values travel as
// double so second-valued counters (stage timings) fit the same pipe;
// integral values render without a decimal point.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0;
  HistogramSnapshot histogram;  // Valid iff kind == kHistogram.
};

inline void AppendCounter(std::vector<MetricValue>& out, std::string name,
                          double value) {
  MetricValue v;
  v.name = std::move(name);
  v.kind = MetricValue::Kind::kCounter;
  v.value = value;
  out.push_back(std::move(v));
}

inline void AppendGauge(std::vector<MetricValue>& out, std::string name,
                        double value) {
  MetricValue v;
  v.name = std::move(name);
  v.kind = MetricValue::Kind::kGauge;
  v.value = value;
  out.push_back(std::move(v));
}

inline void AppendHistogram(std::vector<MetricValue>& out, std::string name,
                            HistogramSnapshot snap) {
  MetricValue v;
  v.name = std::move(name);
  v.kind = MetricValue::Kind::kHistogram;
  v.histogram = snap;
  out.push_back(std::move(v));
}

// Named-metric registry. Get* lazily creates (stable references — entries
// are never removed); AddSource registers a pull callback whose metrics
// join every Collect(). Lookup takes a mutex, so call sites should hold
// the returned reference rather than re-resolving per event.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }

  MaxGauge& GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<MaxGauge>();
    return *slot;
  }

  LatencyHistogram& GetHistogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return *slot;
  }

  // The source is invoked on every Collect; it must be thread-safe and
  // must outlive the registry (or be removed by destroying the registry).
  void AddSource(std::function<void(std::vector<MetricValue>&)> source) {
    std::lock_guard<std::mutex> lock(mu_);
    sources_.push_back(std::move(source));
  }

  void CollectInto(std::vector<MetricValue>& out) const {
    std::vector<std::function<void(std::vector<MetricValue>&)>> sources;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [name, c] : counters_) {
        AppendCounter(out, name, static_cast<double>(c->value()));
      }
      for (const auto& [name, g] : gauges_) {
        AppendGauge(out, name, static_cast<double>(g->value()));
      }
      for (const auto& [name, h] : histograms_) {
        AppendHistogram(out, name, h->Snapshot());
      }
      sources = sources_;
    }
    // Sources run outside mu_ so they may touch the registry re-entrantly.
    for (const auto& source : sources) source(out);
  }

  std::vector<MetricValue> Collect() const {
    std::vector<MetricValue> out;
    CollectInto(out);
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<MaxGauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::vector<std::function<void(std::vector<MetricValue>&)>> sources_;
};

namespace internal {

// %.17g round-trips doubles; integral values print without an exponent or
// decimal point so counters stay grep-able.
inline std::string FormatNumber(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

inline void SortByName(std::vector<MetricValue>& values) {
  std::sort(values.begin(), values.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
}

}  // namespace internal

// Prometheus text exposition. Histogram buckets are cumulative with `le`
// labels in SECONDS (the Prometheus convention for latency); only buckets
// up to the highest non-empty one are emitted, plus +Inf.
inline std::string RenderPrometheus(std::vector<MetricValue> values,
                                    const std::string& prefix = "pdbscan") {
  internal::SortByName(values);
  std::string out;
  for (const MetricValue& v : values) {
    const std::string name =
        prefix + "_" + internal::SanitizeMetricName(v.name);
    switch (v.kind) {
      case MetricValue::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + internal::FormatNumber(v.value) + "\n";
        break;
      case MetricValue::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + internal::FormatNumber(v.value) + "\n";
        break;
      case MetricValue::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        size_t last = 0;
        for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
          if (v.histogram.buckets[b] != 0) last = b;
        }
        uint64_t cumulative = 0;
        for (size_t b = 0; b <= last; ++b) {
          cumulative += v.histogram.buckets[b];
          char le[32];
          std::snprintf(le, sizeof(le), "%.9g",
                        static_cast<double>(
                            HistogramSnapshot::BucketUpperNanos(b)) /
                            1e9);
          out += name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               std::to_string(v.histogram.count) + "\n";
        out += name + "_sum " +
               internal::FormatNumber(
                   static_cast<double>(v.histogram.sum_nanos) / 1e9) +
               "\n";
        out += name + "_count " + std::to_string(v.histogram.count) + "\n";
        break;
      }
    }
  }
  return out;
}

// JSON exposition: {"schema":..., "counters":{...}, "gauges":{...},
// "histograms":{name:{count,sum_nanos,p50_nanos,p90_nanos,p99_nanos,
// buckets:[[upper_nanos,count],...]}}}. Bucket entries list only non-empty
// buckets.
inline std::string RenderJson(std::vector<MetricValue> values) {
  internal::SortByName(values);
  auto quote = [](const std::string& s) { return "\"" + s + "\""; };
  std::string counters, gauges, histograms;
  for (const MetricValue& v : values) {
    const std::string name = internal::SanitizeMetricName(v.name);
    switch (v.kind) {
      case MetricValue::Kind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += quote(name) + ":" + internal::FormatNumber(v.value);
        break;
      case MetricValue::Kind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += quote(name) + ":" + internal::FormatNumber(v.value);
        break;
      case MetricValue::Kind::kHistogram: {
        if (!histograms.empty()) histograms += ",";
        std::string buckets;
        for (size_t b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
          if (v.histogram.buckets[b] == 0) continue;
          if (!buckets.empty()) buckets += ",";
          buckets += "[" +
                     std::to_string(HistogramSnapshot::BucketUpperNanos(b)) +
                     "," + std::to_string(v.histogram.buckets[b]) + "]";
        }
        histograms +=
            quote(name) + ":{\"count\":" + std::to_string(v.histogram.count) +
            ",\"sum_nanos\":" + std::to_string(v.histogram.sum_nanos) +
            ",\"p50_nanos\":" +
            std::to_string(v.histogram.PercentileNanos(0.50)) +
            ",\"p90_nanos\":" +
            std::to_string(v.histogram.PercentileNanos(0.90)) +
            ",\"p99_nanos\":" +
            std::to_string(v.histogram.PercentileNanos(0.99)) +
            ",\"buckets\":[" + buckets + "]}";
        break;
      }
    }
  }
  return "{\"schema\":\"pdbscan-telemetry-v1\",\"counters\":{" + counters +
         "},\"gauges\":{" + gauges + "},\"histograms\":{" + histograms +
         "}}";
}

}  // namespace pdbscan::telemetry

#endif  // PDBSCAN_TELEMETRY_METRICS_H_
