// Tracing: RAII spans with parent links, recorded into a bounded lock-free
// ring buffer, with request-scoped trace ids that propagate across the
// serving stack (connection thread -> scheduler queue -> executor).
//
// Cost model. Tracing is OFF by default; the only cost a disabled build
// pays is one inlined relaxed atomic load + branch per span site
// (TraceEnabled()). When enabled, a span is two steady_clock reads, a
// thread-local stack push/pop and one ring append — no allocation, no
// locks. Span names must be STATIC strings (the ring stores the pointer).
//
// Context model. Each thread carries a TraceContext: the ambient trace id
// plus a bounded stack of open span ids. TraceSpan reads the stack top as
// its parent and pushes itself; the destructor pops and appends the
// finished SpanRecord to the global ring. Cross-thread propagation is
// explicit: the serving scheduler snapshots (trace id, top-of-stack span
// id) at admission and the executor re-establishes them with
// ScopedTraceContext before executing the batch, so executor-side spans
// nest under the submitting request's root span. Spans deeper than
// kMaxDepth, or created on threads with no context, still record — they
// just parent to the top of whatever stack exists (or to nothing).
//
// The ring is a seqlock-per-slot design over atomic words: writers claim a
// slot with an odd sequence number, store the record field-by-field with
// relaxed atomics, and release with an even number; readers skip odd slots
// and retry torn reads. Every access is through std::atomic, so the ring
// is data-race-free under TSan while writers never block readers or each
// other (a writer that catches a slot mid-write drops the span — telemetry
// prefers losing one span to stalling the serving path).
#ifndef PDBSCAN_TELEMETRY_TRACE_H_
#define PDBSCAN_TELEMETRY_TRACE_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/env.h"

namespace pdbscan::telemetry {

// One finished span. `name` points at a static string literal.
struct SpanRecord {
  const char* name = nullptr;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root (no parent).
  uint64_t start_nanos = 0;
  uint64_t end_nanos = 0;

  uint64_t duration_nanos() const {
    return end_nanos >= start_nanos ? end_nanos - start_nanos : 0;
  }
};

namespace internal {

inline std::atomic<bool> g_trace_enabled{false};
inline std::atomic<uint64_t> g_next_span_id{1};

struct TraceContext {
  static constexpr size_t kMaxDepth = 32;
  uint64_t trace_id = 0;
  uint64_t stack[kMaxDepth] = {};
  size_t depth = 0;

  uint64_t top() const { return depth > 0 ? stack[depth - 1] : 0; }
};

inline TraceContext& ThreadTraceContext() {
  thread_local TraceContext ctx;
  return ctx;
}

}  // namespace internal

// The compile-time-inlined enabled check: one relaxed load and a branch.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

inline void SetTraceEnabled(bool on) {
  internal::g_trace_enabled.store(on, std::memory_order_relaxed);
}

// Steady-clock nanoseconds — the time base of every span.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NextSpanId() {
  return internal::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

// A process-unique trace id (time-salted so ids from successive client
// processes rarely collide in a server's ring).
inline uint64_t NewTraceId() {
  const uint64_t id = NowNanos() ^ (NextSpanId() << 48);
  return id != 0 ? id : 1;
}

// Ambient trace id / parent span of the calling thread (0 = none).
inline uint64_t CurrentTraceId() {
  return internal::ThreadTraceContext().trace_id;
}
inline uint64_t CurrentSpanId() {
  return internal::ThreadTraceContext().top();
}

// Bounded lock-free span sink. Capacity is rounded up to a power of two.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 4096)
      : mask_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity) - 1),
        slots_(new Slot[mask_ + 1]) {}

  size_t capacity() const { return mask_ + 1; }
  uint64_t appended() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  void Append(const SpanRecord& rec) {
    const uint64_t idx =
        cursor_.fetch_add(1, std::memory_order_relaxed) & mask_;
    Slot& slot = slots_[idx];
    uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    if ((seq & 1) != 0 ||
        !slot.seq.compare_exchange_strong(seq, seq + 1,
                                          std::memory_order_acq_rel)) {
      // Another writer lapped us onto a slot mid-write; drop this span.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slot.words[0].store(reinterpret_cast<uintptr_t>(rec.name),
                        std::memory_order_relaxed);
    slot.words[1].store(rec.trace_id, std::memory_order_relaxed);
    slot.words[2].store(rec.span_id, std::memory_order_relaxed);
    slot.words[3].store(rec.parent_id, std::memory_order_relaxed);
    slot.words[4].store(rec.start_nanos, std::memory_order_relaxed);
    slot.words[5].store(rec.end_nanos, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release);
  }

  // Copies every stable slot (in-flight writes are skipped, torn reads
  // retried once then skipped). Records arrive in no particular order;
  // sort by start_nanos for display.
  std::vector<SpanRecord> Snapshot() const {
    std::vector<SpanRecord> out;
    const size_t n = mask_ + 1;
    out.reserve(std::min<uint64_t>(appended(), n));
    for (size_t i = 0; i < n; ++i) {
      const Slot& slot = slots_[i];
      for (int attempt = 0; attempt < 2; ++attempt) {
        const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 == 0 || (s1 & 1) != 0) break;  // Empty or being written.
        SpanRecord rec;
        rec.name = reinterpret_cast<const char*>(
            slot.words[0].load(std::memory_order_relaxed));
        rec.trace_id = slot.words[1].load(std::memory_order_relaxed);
        rec.span_id = slot.words[2].load(std::memory_order_relaxed);
        rec.parent_id = slot.words[3].load(std::memory_order_relaxed);
        rec.start_nanos = slot.words[4].load(std::memory_order_relaxed);
        rec.end_nanos = slot.words[5].load(std::memory_order_relaxed);
        if (slot.seq.load(std::memory_order_acquire) == s1) {
          out.push_back(rec);
          break;
        }
      }
    }
    return out;
  }

  // Every stable record of one trace, sorted by start time.
  std::vector<SpanRecord> CollectTrace(uint64_t trace_id) const {
    std::vector<SpanRecord> out = Snapshot();
    std::erase_if(out, [trace_id](const SpanRecord& r) {
      return r.trace_id != trace_id;
    });
    std::sort(out.begin(), out.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.start_nanos != b.start_nanos
                           ? a.start_nanos < b.start_nanos
                           : a.span_id < b.span_id;
              });
    return out;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[6] = {};
  };

  const size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> dropped_{0};
};

// The process-wide span sink. Capacity comes from PDBSCAN_TRACE_RING at
// first use (default 4096); leaked intentionally, like GlobalStats().
inline TraceRing& GlobalTraceRing() {
  static TraceRing* ring = new TraceRing(static_cast<size_t>(
      util::GetEnvInt("PDBSCAN_TRACE_RING", 4096)));
  return *ring;
}

// Reads PDBSCAN_TRACE (nonzero = on) — call once from tool main()s so
// deployments can enable tracing without a flag.
inline void InitTraceFromEnv() {
  if (util::GetEnvInt("PDBSCAN_TRACE", 0) != 0) SetTraceEnabled(true);
}

// Appends a manually timed span (for intervals that cannot be RAII, e.g. a
// queue wait measured across threads). Returns the span id used.
inline uint64_t RecordSpan(const char* name, uint64_t trace_id,
                           uint64_t parent_id, uint64_t start_nanos,
                           uint64_t end_nanos, uint64_t span_id = 0) {
  SpanRecord rec;
  rec.name = name;
  rec.trace_id = trace_id;
  rec.span_id = span_id != 0 ? span_id : NextSpanId();
  rec.parent_id = parent_id;
  rec.start_nanos = start_nanos;
  rec.end_nanos = end_nanos;
  GlobalTraceRing().Append(rec);
  return rec.span_id;
}

// Establishes (trace id, parent span id) on the calling thread for the
// scope — the cross-thread propagation primitive. Spans opened inside
// parent to `parent_span_id` and carry `trace_id`.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(uint64_t trace_id, uint64_t parent_span_id = 0)
      : ctx_(internal::ThreadTraceContext()),
        prev_trace_(ctx_.trace_id),
        pushed_(false) {
    ctx_.trace_id = trace_id;
    if (parent_span_id != 0 &&
        ctx_.depth < internal::TraceContext::kMaxDepth) {
      ctx_.stack[ctx_.depth++] = parent_span_id;
      pushed_ = true;
    }
  }

  ~ScopedTraceContext() {
    if (pushed_) --ctx_.depth;
    ctx_.trace_id = prev_trace_;
  }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  internal::TraceContext& ctx_;
  uint64_t prev_trace_;
  bool pushed_;
};

// The RAII span. Construction with tracing disabled is a relaxed load and
// a branch; nothing else happens (and nothing is recorded at destruction
// even if tracing was enabled mid-span).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!TraceEnabled()) return;
    internal::TraceContext& ctx = internal::ThreadTraceContext();
    name_ = name;
    trace_id_ = ctx.trace_id;
    parent_id_ = ctx.top();
    span_id_ = NextSpanId();
    start_nanos_ = NowNanos();
    if (ctx.depth < internal::TraceContext::kMaxDepth) {
      ctx.stack[ctx.depth++] = span_id_;
      pushed_ = true;
    }
    active_ = true;
  }

  ~TraceSpan() {
    if (!active_) return;
    internal::TraceContext& ctx = internal::ThreadTraceContext();
    if (pushed_ && ctx.depth > 0) --ctx.depth;
    SpanRecord rec;
    rec.name = name_;
    rec.trace_id = trace_id_;
    rec.span_id = span_id_;
    rec.parent_id = parent_id_;
    rec.start_nanos = start_nanos_;
    rec.end_nanos = NowNanos();
    GlobalTraceRing().Append(rec);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t span_id() const { return span_id_; }
  bool active() const { return active_; }

 private:
  const char* name_ = nullptr;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_nanos_ = 0;
  bool active_ = false;
  bool pushed_ = false;
};

// --- Span-tree assembly and rendering ---------------------------------------

// One node of an assembled trace tree. `self_nanos` is the span's duration
// minus its children's (clamped at 0) — the time attributable to the span
// itself. For a well-nested trace the self times of a root's subtree sum
// to exactly the root's duration.
struct SpanNode {
  SpanRecord rec;
  std::vector<size_t> children;  // Indices into the nodes vector.
  uint64_t self_nanos = 0;
  bool is_root = false;
};

// Builds parent/child links over `spans` (any order; unknown parents make
// roots). Children keep the input order, which CollectTrace makes
// chronological.
inline std::vector<SpanNode> BuildSpanTree(std::span<const SpanRecord> spans) {
  std::vector<SpanNode> nodes(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    nodes[i].rec = spans[i];
    nodes[i].self_nanos = spans[i].duration_nanos();
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    bool linked = false;
    if (nodes[i].rec.parent_id != 0) {
      for (size_t j = 0; j < nodes.size(); ++j) {
        if (j != i && nodes[j].rec.span_id == nodes[i].rec.parent_id) {
          nodes[j].children.push_back(i);
          const uint64_t child = nodes[i].rec.duration_nanos();
          nodes[j].self_nanos =
              nodes[j].self_nanos >= child ? nodes[j].self_nanos - child : 0;
          linked = true;
          break;
        }
      }
    }
    nodes[i].is_root = !linked;
  }
  return nodes;
}

// Sum of self times over every span — for a single well-nested trace this
// equals the sum of the root durations (the total covered wall-clock).
inline uint64_t TotalSelfNanos(std::span<const SpanNode> nodes) {
  uint64_t total = 0;
  for (const SpanNode& n : nodes) total += n.self_nanos;
  return total;
}

namespace internal {

inline void FormatSpanSubtree(const std::vector<SpanNode>& nodes, size_t i,
                              int depth, uint64_t trace_start,
                              std::string& out) {
  const SpanNode& n = nodes[i];
  char line[256];
  std::snprintf(line, sizeof(line), "%*s%-24s %10.3fms  self %10.3fms  @+%.3fms\n",
                depth * 2, "", n.rec.name != nullptr ? n.rec.name : "?",
                static_cast<double>(n.rec.duration_nanos()) / 1e6,
                static_cast<double>(n.self_nanos) / 1e6,
                static_cast<double>(n.rec.start_nanos - trace_start) / 1e6);
  out += line;
  for (const size_t c : n.children) {
    FormatSpanSubtree(nodes, c, depth + 1, trace_start, out);
  }
}

}  // namespace internal

// Human-readable indented span tree with per-span total/self times and
// offsets from the trace start.
inline std::string FormatSpanTree(std::span<const SpanRecord> spans) {
  if (spans.empty()) return "(no spans)\n";
  uint64_t trace_start = ~uint64_t{0};
  for (const SpanRecord& s : spans) {
    trace_start = std::min(trace_start, s.start_nanos);
  }
  const std::vector<SpanNode> nodes = BuildSpanTree(spans);
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].is_root) {
      internal::FormatSpanSubtree(nodes, i, 0, trace_start, out);
    }
  }
  return out;
}

}  // namespace pdbscan::telemetry

#endif  // PDBSCAN_TELEMETRY_TRACE_H_
