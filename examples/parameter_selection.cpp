// Parameter selection workflow on the reusable query surfaces: choose
// epsilon with the sorted k-distance curve (Ester et al.'s methodology),
// explore candidate epsilons through ONE DbscanEngine (layout + workspace
// reused across rebuilds), answer the min_pts sweep CONCURRENTLY from a
// frozen shared CellIndex via an EnginePool (cells built once, MarkCore
// counted once, one client thread per setting), then explore the density
// hierarchy with OPTICS.
//
// The explorations are graded with the in-library quality metrics
// (src/quality/): each candidate setting's partition is scored by ARI/NMI
// against the auto-selected configuration, turning "how sensitive is the
// result to this knob?" into numbers instead of eyeballed cluster counts.
#include <algorithm>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "data/seed_spreader.h"
#include "dbscan/stats.h"
#include "extensions/kdist.h"
#include "extensions/optics.h"
#include "pdbscan/pdbscan.h"
#include "util/timer.h"

namespace {

void ReportClustering(const char* what, double eps, size_t min_pts,
                      const pdbscan::Clustering& clustering, double seconds) {
  size_t noise = 0;
  for (size_t i = 0; i < clustering.size(); ++i) {
    noise += clustering.cluster[i] == pdbscan::Clustering::kNoise;
  }
  std::printf("  %s eps=%10.2f minpts=%5zu: %4zu clusters, %5.1f%% noise, %.3fs\n",
              what, eps, min_pts, clustering.num_clusters,
              100.0 * double(noise) / double(std::max<size_t>(clustering.size(), 1)),
              seconds);
}

// Grades `got` against the reference partition with the quality metrics:
// ARI/NMI near 1 mean the knob change barely moved the clustering.
void ReportAgreement(const pdbscan::Clustering& got,
                     const pdbscan::Clustering& reference) {
  const pdbscan::QualityReport q = pdbscan::EvaluateQuality(
      got, std::span<const int64_t>(reference.cluster));
  std::printf("      vs chosen: ARI=%.4f NMI=%.4f noise=%.1f%%\n", q.ari,
              q.nmi, 100.0 * q.predicted_noise_ratio);
}

}  // namespace

int main() {
  const size_t n = 20000;
  const size_t min_pts = 10;
  auto pts = pdbscan::data::SsVarden<2>(n);

  // 1. k-distance curve: print a few quantiles and the suggested epsilon.
  const auto curve =
      pdbscan::extensions::SortedKDistanceCurve<2>(pts, min_pts);
  std::printf("k-distance curve (k=%zu):\n", min_pts);
  for (const double q : {0.01, 0.05, 0.25, 0.5, 0.9}) {
    const size_t idx = static_cast<size_t>(q * (double(n) - 1));
    std::printf("  rank %5.0f%%: %10.2f\n", q * 100, curve[idx]);
  }
  const double eps = pdbscan::extensions::SuggestEpsilon<2>(pts, min_pts);
  std::printf("suggested epsilon (max curvature): %.2f\n\n", eps);

  // 2. Explore candidate epsilons through one engine. The engine keeps the
  // x/y layout and scratch buffers warm across the rebuilds each new
  // epsilon requires.
  pdbscan::DbscanEngine<2> engine;
  engine.SetPoints(pts);
  auto candidates = pdbscan::extensions::CandidateEpsilons(curve, 4);
  candidates.push_back(eps);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::printf("epsilon exploration (one engine, %zu candidates):\n",
              candidates.size());
  // The run at the auto-selected epsilon is the reference every other
  // candidate is graded against — ARI/NMI quantify how much the partition
  // moves as epsilon sweeps through the elbow region.
  const auto chosen = engine.Run(eps, min_pts);
  for (const double e : candidates) {
    pdbscan::util::Timer timer;
    const auto clustering = engine.Run(e, min_pts);
    ReportClustering("DBSCAN", e, min_pts, clustering, timer.Seconds());
    ReportAgreement(clustering, chosen);
  }
  std::printf("\n");

  // 3. min_pts sensitivity at the suggested epsilon, served concurrently:
  // freeze the cell structure + saturated MarkCore counts into a shared
  // CellIndex once, then answer every setting from its own client thread
  // through an EnginePool. The pool's aggregated stats prove the build
  // happened once no matter how many clients queried.
  const std::vector<size_t> minpts_sweep = {5, 10, 20, 50, 100};
  pdbscan::util::Timer timer;
  pdbscan::EnginePool<2> pool(std::span<const pdbscan::Point2>(pts), eps,
                              /*counts_cap=*/100);
  std::vector<pdbscan::Clustering> sweep(minpts_sweep.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < minpts_sweep.size(); ++i) {
    clients.emplace_back(
        [&, i]() { sweep[i] = pool.Run(minpts_sweep[i]); });
  }
  for (auto& c : clients) c.join();
  const double sweep_seconds = timer.Seconds();
  pdbscan::dbscan::PipelineStats pool_stats;
  pool.AggregateStats(pool_stats);
  std::printf(
      "min_pts sweep at eps=%.2f, %zu concurrent clients "
      "(%.3fs total, cells built %zu time(s), counts built %zu time(s)):\n",
      eps, minpts_sweep.size(), sweep_seconds,
      pool_stats.cells_built.load(), pool_stats.counts_built.load());
  // Quality-grade the sweep: each min_pts setting served by the pool is
  // scored against the chosen configuration's engine run. The setting
  // matching the chosen (eps, min_pts) must agree perfectly (ARI = 1) —
  // the auto-eps -> EnginePool round trip — while neighbors show how the
  // partition degrades as min_pts moves.
  for (size_t i = 0; i < sweep.size(); ++i) {
    ReportClustering("DBSCAN", eps, minpts_sweep[i], sweep[i], 0.0);
    ReportAgreement(sweep[i], chosen);
  }
  std::printf("\n");

  // 4. OPTICS at a generous epsilon: extract clusterings at several lower
  // density levels from the single run.
  timer.Reset();
  const auto optics = pdbscan::extensions::Optics<2>(pts, eps * 2, min_pts);
  std::printf("OPTICS(eps=%.2f) in %.3fs; extracting levels:\n", eps * 2,
              timer.Seconds());
  for (const double factor : {2.0, 1.0, 0.5, 0.25}) {
    const auto labels =
        pdbscan::extensions::ExtractDbscanClustering(optics, eps * factor);
    const int64_t clusters =
        labels.empty() ? 0
                       : 1 + *std::max_element(labels.begin(), labels.end());
    size_t noise = 0;
    for (const int64_t l : labels) noise += l < 0;
    std::printf("  eps'=%8.2f: %4lld clusters, %5.1f%% noise\n", eps * factor,
                static_cast<long long>(std::max<int64_t>(clusters, 0)),
                100.0 * double(noise) / double(n));
  }
  return 0;
}
