// Parameter selection workflow: choose epsilon with the sorted k-distance
// curve (Ester et al.'s methodology), then explore the density hierarchy
// with OPTICS — one OPTICS run answers DBSCAN for every epsilon' below the
// chosen epsilon.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/seed_spreader.h"
#include "extensions/kdist.h"
#include "extensions/optics.h"
#include "pdbscan/pdbscan.h"
#include "util/timer.h"

int main() {
  const size_t n = 20000;
  const size_t min_pts = 10;
  auto pts = pdbscan::data::SsVarden<2>(n);

  // 1. k-distance curve: print a few quantiles and the suggested epsilon.
  const auto curve =
      pdbscan::extensions::SortedKDistanceCurve<2>(pts, min_pts);
  std::printf("k-distance curve (k=%zu):\n", min_pts);
  for (const double q : {0.01, 0.05, 0.25, 0.5, 0.9}) {
    const size_t idx = static_cast<size_t>(q * (double(n) - 1));
    std::printf("  rank %5.0f%%: %10.2f\n", q * 100, curve[idx]);
  }
  const double eps = pdbscan::extensions::SuggestEpsilon<2>(pts, min_pts);
  std::printf("suggested epsilon (max curvature): %.2f\n\n", eps);

  // 2. Cluster at the suggested epsilon.
  pdbscan::util::Timer timer;
  const auto clustering = pdbscan::Dbscan<2>(pts, eps, min_pts);
  std::printf("DBSCAN(eps=%.2f, minpts=%zu): %zu clusters in %.3fs\n", eps,
              min_pts, clustering.num_clusters, timer.Seconds());

  // 3. OPTICS at a generous epsilon: extract clusterings at several lower
  // density levels from the single run.
  timer.Reset();
  const auto optics = pdbscan::extensions::Optics<2>(pts, eps * 2, min_pts);
  std::printf("OPTICS(eps=%.2f) in %.3fs; extracting levels:\n", eps * 2,
              timer.Seconds());
  for (const double factor : {2.0, 1.0, 0.5, 0.25}) {
    const auto labels =
        pdbscan::extensions::ExtractDbscanClustering(optics, eps * factor);
    const int64_t clusters =
        labels.empty() ? 0
                       : 1 + *std::max_element(labels.begin(), labels.end());
    size_t noise = 0;
    for (const int64_t l : labels) noise += l < 0;
    std::printf("  eps'=%8.2f: %4lld clusters, %5.1f%% noise\n", eps * factor,
                static_cast<long long>(std::max<int64_t>(clusters, 0)),
                100.0 * double(noise) / double(n));
  }
  return 0;
}
