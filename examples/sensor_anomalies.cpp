// Anomaly-detection scenario on high-dimensional sensor data (the paper's
// 7D Household dataset): DBSCAN noise points = measurements that match no
// recurring operating mode of the appliance fleet.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/synthetic_real.h"
#include "pdbscan/pdbscan.h"
#include "util/timer.h"

int main() {
  const size_t n = 100000;
  auto readings = pdbscan::data::HouseholdLike(n);

  // Sweep epsilon to pick an operating point: few clusters, small noise.
  std::printf("%-10s %-10s %-12s %-10s\n", "epsilon", "clusters", "noise(%)",
              "time(s)");
  for (const double epsilon : {25.0, 50.0, 100.0, 200.0}) {
    pdbscan::util::Timer timer;
    const auto result = pdbscan::Dbscan<7>(readings, epsilon, /*min_pts=*/100,
                                           pdbscan::OurExactQt());
    size_t noise = 0;
    for (size_t i = 0; i < n; ++i) {
      noise += result.cluster[i] == pdbscan::Clustering::kNoise;
    }
    std::printf("%-10g %-10zu %-12.2f %-10.3f\n", epsilon,
                result.num_clusters, 100.0 * noise / n, timer.Seconds());
  }

  // At the chosen operating point, list the most anomalous readings: noise
  // points furthest from any core point's mode (approximated by distance to
  // the nearest cluster centroid).
  const auto result =
      pdbscan::Dbscan<7>(readings, 100.0, 100, pdbscan::OurExactQt());
  std::vector<pdbscan::Point<7>> centroids(result.num_clusters);
  std::vector<size_t> sizes(result.num_clusters, 0);
  for (size_t i = 0; i < n; ++i) {
    if (result.cluster[i] < 0) continue;
    auto& c = centroids[static_cast<size_t>(result.cluster[i])];
    for (int k = 0; k < 7; ++k) c[k] += readings[i][k];
    ++sizes[static_cast<size_t>(result.cluster[i])];
  }
  for (size_t c = 0; c < centroids.size(); ++c) {
    for (int k = 0; k < 7; ++k) centroids[c][k] /= double(std::max<size_t>(sizes[c], 1));
  }
  struct Anomaly {
    size_t index;
    double distance;
  };
  std::vector<Anomaly> anomalies;
  for (size_t i = 0; i < n; ++i) {
    if (result.cluster[i] >= 0) continue;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& c : centroids) {
      best = std::min(best, readings[i].SquaredDistance(c));
    }
    anomalies.push_back({i, std::sqrt(best)});
  }
  std::sort(anomalies.begin(), anomalies.end(),
            [](const Anomaly& a, const Anomaly& b) { return a.distance > b.distance; });
  std::printf("\n%zu anomalous readings; top 5 by distance from any mode:\n",
              anomalies.size());
  for (size_t r = 0; r < std::min<size_t>(5, anomalies.size()); ++r) {
    std::printf("  reading %zu (%.1f units from nearest mode)\n",
                anomalies[r].index, anomalies[r].distance);
  }
  return 0;
}
