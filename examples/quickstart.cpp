// Quickstart: cluster a small 2D dataset and inspect the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>
#include <random>
#include <vector>

#include "pdbscan/pdbscan.h"

int main() {
  using pdbscan::Point2;

  // Two Gaussian blobs plus scattered noise.
  std::mt19937 rng(42);
  std::normal_distribution<double> gauss(0.0, 0.5);
  std::uniform_real_distribution<double> uniform(0.0, 20.0);
  std::vector<Point2> points;
  for (int i = 0; i < 200; ++i) points.push_back({{5 + gauss(rng), 5 + gauss(rng)}});
  for (int i = 0; i < 200; ++i) points.push_back({{15 + gauss(rng), 15 + gauss(rng)}});
  for (int i = 0; i < 40; ++i) points.push_back({{uniform(rng), uniform(rng)}});

  // Run DBSCAN: epsilon = 0.8, minPts = 10. The default configuration is
  // "our-exact" (grid cells + BCP cell graph); see pdbscan::Options for the
  // other variants from the paper.
  const pdbscan::Clustering result = pdbscan::Dbscan<2>(points, 0.8, 10);

  std::printf("points:      %zu\n", result.size());
  std::printf("clusters:    %zu\n", result.num_clusters);
  size_t core = 0, border = 0, noise = 0;
  for (size_t i = 0; i < result.size(); ++i) {
    if (result.is_core[i]) {
      ++core;
    } else if (result.cluster[i] != pdbscan::Clustering::kNoise) {
      ++border;
    } else {
      ++noise;
    }
  }
  std::printf("core points:   %zu\n", core);
  std::printf("border points: %zu\n", border);
  std::printf("noise points:  %zu\n", noise);

  // Per-cluster sizes.
  std::vector<size_t> sizes(result.num_clusters, 0);
  for (size_t i = 0; i < result.size(); ++i) {
    if (result.cluster[i] >= 0) ++sizes[static_cast<size_t>(result.cluster[i])];
  }
  for (size_t c = 0; c < sizes.size(); ++c) {
    std::printf("cluster %zu: %zu points\n", c, sizes[c]);
  }

  // Border points may belong to several clusters:
  for (size_t i = 0; i < result.size(); ++i) {
    const auto m = result.memberships(i);
    if (m.size() > 1) {
      std::printf("point %zu is a border point of %zu clusters\n", i, m.size());
    }
  }
  return 0;
}
