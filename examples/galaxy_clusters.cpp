// Astronomy scenario (the paper clusters the Cosmo50 N-body simulation):
// find halos/filament structures in 3D simulation snapshots, comparing the
// exact and approximate algorithms.
#include <cstdio>
#include <vector>

#include "data/synthetic_real.h"
#include "pdbscan/pdbscan.h"
#include "util/timer.h"

int main() {
  const size_t n = 150000;
  auto particles = pdbscan::data::Cosmo50Like(n);
  const double epsilon = 15.0;
  const size_t min_pts = 30;

  pdbscan::util::Timer timer;
  const auto exact = pdbscan::Dbscan<3>(particles, epsilon, min_pts,
                                        pdbscan::OurExactQt());
  const double exact_secs = timer.Seconds();

  timer.Reset();
  const auto approx = pdbscan::Dbscan<3>(particles, epsilon, min_pts,
                                         pdbscan::OurApproxQt(0.01));
  const double approx_secs = timer.Seconds();

  std::printf("exact  (our-exact-qt):   %zu structures in %.3fs\n",
              exact.num_clusters, exact_secs);
  std::printf("approx (our-approx-qt):  %zu structures in %.3fs (rho=0.01)\n",
              approx.num_clusters, approx_secs);

  // Structure mass function: how many halos exceed each size threshold.
  std::vector<size_t> sizes(exact.num_clusters, 0);
  for (size_t i = 0; i < n; ++i) {
    if (exact.cluster[i] >= 0) ++sizes[static_cast<size_t>(exact.cluster[i])];
  }
  for (const size_t threshold : {100u, 1000u, 10000u}) {
    size_t count = 0;
    for (const size_t s : sizes) count += s >= threshold;
    std::printf("structures with >= %u particles: %zu\n", threshold, count);
  }

  // Agreement between exact and approximate labels (they may differ only
  // for clusters whose gap distances fall in (eps, eps(1+rho)]).
  size_t agree = 0;
  for (size_t i = 0; i < n; ++i) {
    agree += (exact.cluster[i] < 0) == (approx.cluster[i] < 0);
  }
  std::printf("exact/approx noise agreement: %.2f%%\n", 100.0 * agree / n);
  return 0;
}
