// Transportation scenario (the paper's motivating domain): find pickup
// hotspots in GPS data.
//
// Uses the OpenStreetMap-like 2D generator (street grid + city blobs) as a
// stand-in for a taxi pickup log, clusters it with the fastest 2D variant
// (our-2d-grid-bcp), and reports the densest hotspots with their centroids.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/synthetic_real.h"
#include "pdbscan/pdbscan.h"
#include "util/timer.h"

int main() {
  const size_t n = 200000;
  auto pickups = pdbscan::data::OpenStreetMapLike(n);

  pdbscan::util::Timer timer;
  const auto result =
      pdbscan::Dbscan<2>(pickups, /*epsilon=*/25.0, /*min_pts=*/50,
                         pdbscan::Our2dGridBcp());
  std::printf("clustered %zu pickups in %.3fs (%zu hotspots found)\n", n,
              timer.Seconds(), result.num_clusters);

  // Rank hotspots by size and report centroids.
  struct Hotspot {
    size_t size = 0;
    double sum_x = 0, sum_y = 0;
  };
  std::vector<Hotspot> hotspots(result.num_clusters);
  size_t noise = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t c = result.cluster[i];
    if (c < 0) {
      ++noise;
      continue;
    }
    auto& h = hotspots[static_cast<size_t>(c)];
    ++h.size;
    h.sum_x += pickups[i][0];
    h.sum_y += pickups[i][1];
  }
  std::vector<size_t> order(hotspots.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return hotspots[a].size > hotspots[b].size;
  });

  std::printf("%zu pickups are isolated noise (%.1f%%)\n", noise,
              100.0 * noise / n);
  std::printf("top hotspots:\n");
  for (size_t r = 0; r < std::min<size_t>(10, order.size()); ++r) {
    const auto& h = hotspots[order[r]];
    std::printf("  #%zu: %6zu pickups around (%.1f, %.1f)\n", r + 1, h.size,
                h.sum_x / h.size, h.sum_y / h.size);
  }
  return 0;
}
