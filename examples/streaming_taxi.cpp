// Streaming transportation scenario: live pickup hotspots over a rolling
// window.
//
// A taxi dispatch service wants the CURRENT pickup hotspots, not last
// hour's: pickups arrive continuously and old ones age out. This demo
// feeds OpenStreetMap-like pickup batches into a StreamingClusterer,
// keeping a rolling window of the freshest pickups — each tick inserts the
// new batch and erases the expired one — and queries hotspots after every
// tick. The per-tick MarkCore recount is confined to the batch's dirty
// cells and their eps-neighborhood, not the window size: watch the
// cells_rebuilt / cells_retained columns.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/synthetic_real.h"
#include "pdbscan/pdbscan.h"
#include "util/timer.h"

int main() {
  const size_t total = 120000;     // Full pickup log.
  const size_t batch = 10000;      // Pickups per tick ("ten minutes").
  const size_t window = 40000;     // Rolling window served to dispatch.
  const double eps = 25.0;
  const size_t min_pts = 50;

  const auto pickups = pdbscan::data::OpenStreetMapLike(total);
  pdbscan::StreamingClusterer<2> stream(eps, /*counts_cap=*/min_pts);

  std::printf("rolling %zu-pickup window, %zu-pickup ticks, eps=%g "
              "minpts=%zu\n\n",
              window, batch, eps, min_pts);
  std::printf("%5s %8s %9s %9s %9s %9s %8s  top hotspot\n", "tick", "live",
              "apply_ms", "query_ms", "rebuilt", "retained", "hotspots");

  uint64_t oldest_live = 0;  // Ids are assigned consecutively per tick.
  for (size_t tick = 0; tick * batch < total; ++tick) {
    // Insert this tick's pickups; expire everything beyond the window.
    const std::span<const pdbscan::Point2> fresh(
        pickups.data() + tick * batch, std::min(batch, total - tick * batch));
    std::vector<uint64_t> expired;
    const size_t live_after = stream.num_points() + fresh.size();
    if (live_after > window) {
      for (size_t i = 0; i < live_after - window; ++i) {
        expired.push_back(oldest_live++);
      }
    }
    pdbscan::util::Timer apply_timer;
    stream.ApplyUpdates(fresh, expired);
    const double apply_ms = apply_timer.Seconds() * 1e3;

    pdbscan::util::Timer query_timer;
    const auto result = stream.Run(min_pts);
    const double query_ms = query_timer.Seconds() * 1e3;

    // Rank hotspots by size; report the densest one's centroid.
    const auto live = stream.LivePoints();
    std::vector<size_t> sizes(result.num_clusters, 0);
    std::vector<double> sx(result.num_clusters, 0), sy(result.num_clusters, 0);
    for (size_t i = 0; i < result.size(); ++i) {
      const int64_t c = result.cluster[i];
      if (c < 0) continue;
      ++sizes[static_cast<size_t>(c)];
      sx[static_cast<size_t>(c)] += live[i][0];
      sy[static_cast<size_t>(c)] += live[i][1];
    }
    const auto& u = stream.last_update();
    size_t top = 0;
    for (size_t c = 1; c < sizes.size(); ++c) {
      if (sizes[c] > sizes[top]) top = c;
    }
    if (sizes.empty()) {
      std::printf("%5zu %8zu %9.1f %9.1f %9zu %9zu %8zu  (none)\n", tick,
                  stream.num_points(), apply_ms, query_ms, u.cells_rebuilt,
                  u.cells_retained, result.num_clusters);
    } else {
      std::printf("%5zu %8zu %9.1f %9.1f %9zu %9zu %8zu  %6zu pickups @ "
                  "(%.0f, %.0f)\n",
                  tick, stream.num_points(), apply_ms, query_ms,
                  u.cells_rebuilt, u.cells_retained, result.num_clusters,
                  sizes[top], sx[top] / sizes[top], sy[top] / sizes[top]);
    }
  }

  pdbscan::dbscan::PipelineStats agg;
  stream.AggregateStats(agg);
  std::printf("\n%zu snapshots published; cumulative cells_rebuilt=%zu, "
              "cells_retained=%zu — steady-state ticks rebuild only the "
              "batch's eps-neighborhood.\n",
              agg.snapshots_published.load(), agg.cells_rebuilt.load(),
              agg.cells_retained.load());
  return 0;
}
