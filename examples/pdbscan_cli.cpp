// Command-line DBSCAN over CSV files, with index persistence.
//
// Usage:
//   pdbscan_cli <input.csv> <epsilon> <minpts> [options]
//     --method NAME     our-exact (default), our-exact-qt, our-approx,
//                       our-approx-qt, grid-bcp, grid-usec, grid-delaunay,
//                       box-bcp, box-usec, box-delaunay
//     --metric NAME     l2 (default), l1, linf — non-L2 metrics require the
//                       grid + bcp + scan configuration (our-exact)
//     --mode NAME       execution surface: engine (default, one-shot),
//                       pool (frozen CellIndex + EnginePool), sharded,
//                       streaming (batched inserts), serving
//                       (ServingScheduler in front of a pool)
//     --repeat N        timed query repetitions after the build (default 1);
//                       p50/p99 in the #perf record come from these
//     --shards N        shard count for --mode sharded (default 4)
//     --quality FILE    grade the labels against a ground-truth label file
//                       (one integer per line): ARI / NMI / noise ratio to
//                       stderr plus a machine-readable #quality line
//     --rho R           approximation parameter (default 0.01)
//     --bucketing       enable the bucketing heuristic
//     --threads T       worker count (default: hardware)
//     --out FILE        write "cluster_id" per input row (default: stdout
//                       summary only)
//     --save-index FILE build a frozen CellIndex from the input and persist
//                       it as a versioned snapshot before querying
//     --counts-cap N    min_pts cap baked into a saved index (default:
//                       max(minpts, 64); larger min_pts queries recount)
//     --load-index FILE serve from a persisted snapshot instead of
//                       building: <input.csv> may be "-" and <epsilon> is
//                       taken from the snapshot (pass 0). The snapshot's
//                       dimension is auto-detected.
//     --load-mode MODE  owned (default) copies the snapshot into memory;
//                       mapped serves it zero-copy from the file mapping
//     --journal FILE    with --load-index: replay this streaming update
//                       journal on top of the loaded checkpoint before
//                       querying (recovery = snapshot + journal)
//     --trace           enable tracing spans for the run and print the
//                       assembled span tree (total/self times) to stderr;
//                       PDBSCAN_TRACE=1 in the environment does the same
//
// The input CSV holds one point per line, comma-separated coordinates.
//
// Machine-readable output (what tools/bench_runner.py scrapes): stdout
// carries at most one `#perf {...}` line (build seconds, per-query p50/p99
// and qps over --repeat runs, the full config echo), one `#telemetry {...}`
// line (pdbscan-telemetry-v1 JSON with the per-query latency histogram over
// --repeat runs) and, with --quality, one `#quality {...}` line (ARI, NMI,
// noise ratios, cluster counts, label checksum). Everything human-oriented
// goes to stderr.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "data/io.h"
#include "dbscan/stats.h"
#include "kernels/kernel_api.h"
#include "pdbscan/pdbscan.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace {

pdbscan::Options MethodByName(const std::string& name) {
  using namespace pdbscan;
  if (name == "our-exact") return OurExact();
  if (name == "our-exact-qt") return OurExactQt();
  if (name == "our-approx") return OurApprox();
  if (name == "our-approx-qt") return OurApproxQt();
  if (name == "grid-bcp") return Our2dGridBcp();
  if (name == "grid-usec") return Our2dGridUsec();
  if (name == "grid-delaunay") return Our2dGridDelaunay();
  if (name == "box-bcp") return Our2dBoxBcp();
  if (name == "box-usec") return Our2dBoxUsec();
  if (name == "box-delaunay") return Our2dBoxDelaunay();
  std::fprintf(stderr, "unknown method: %s\n", name.c_str());
  std::exit(2);
}

void PrintSummary(const pdbscan::Clustering& result, const std::string& label,
                  double secs) {
  size_t core = 0, noise = 0;
  for (size_t i = 0; i < result.size(); ++i) {
    core += result.is_core[i];
    noise += result.cluster[i] == pdbscan::Clustering::kNoise;
  }
  std::fprintf(stderr,
               "%s: %zu clusters, %zu core / %zu noise of %zu points, %.3fs "
               "(%d threads)\n",
               label.c_str(), result.num_clusters, core, noise, result.size(),
               secs, pdbscan::parallel::num_workers());
  const auto& stats = pdbscan::dbscan::GlobalStats();
  std::fprintf(
      stderr,
      "kernels: %s dispatch, %zu simd batches, %zu box-pruned / %zu "
      "norm-pruned points\n",
      pdbscan::kernels::LevelName(static_cast<pdbscan::kernels::Level>(
          stats.kernel_dispatch_level.load(std::memory_order_relaxed))),
      stats.kernel_batches.load(std::memory_order_relaxed),
      stats.kernel_points_pruned_box.load(std::memory_order_relaxed),
      stats.kernel_points_pruned_norm.load(std::memory_order_relaxed));
}

int WriteLabels(const pdbscan::Clustering& result,
                const std::string& out_path) {
  if (out_path.empty()) return 0;
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "cluster_id\n";
  for (size_t i = 0; i < result.size(); ++i) out << result.cluster[i] << '\n';
  std::fprintf(stderr, "labels written to %s\n", out_path.c_str());
  return 0;
}

// Grades `result` against a ground-truth label file and prints both the
// human summary (stderr) and the machine-readable #quality line (stdout).
// Returns nonzero on a malformed/mismatched truth file.
int EmitQuality(const pdbscan::Clustering& result,
                const std::string& quality_path) {
  if (quality_path.empty()) return 0;
  std::vector<int64_t> truth;
  try {
    truth = pdbscan::ReadLabelsFile(quality_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (truth.size() != result.size()) {
    std::fprintf(stderr,
                 "error: %s has %zu labels but the run produced %zu\n",
                 quality_path.c_str(), truth.size(), result.size());
    return 1;
  }
  const pdbscan::QualityReport q =
      pdbscan::EvaluateQuality(result, std::span<const int64_t>(truth));
  std::fprintf(stderr,
               "quality vs %s: ARI=%.6f NMI=%.6f noise=%.4f (truth %.4f), "
               "%zu clusters (truth %zu)\n",
               quality_path.c_str(), q.ari, q.nmi, q.predicted_noise_ratio,
               q.truth_noise_ratio, q.predicted_clusters, q.truth_clusters);
  std::string histogram = "[";
  for (size_t k = 0; k < q.cluster_size_histogram.size(); ++k) {
    if (k > 0) histogram += ",";
    histogram += std::to_string(q.cluster_size_histogram[k]);
  }
  histogram += "]";
  std::printf(
      "#quality {\"schema\":\"pdbscan-quality-v1\",\"ari\":%.17g,"
      "\"nmi\":%.17g,\"noise_ratio\":%.17g,\"truth_noise_ratio\":%.17g,"
      "\"clusters\":%zu,\"truth_clusters\":%zu,\"n\":%zu,"
      "\"cluster_size_histogram\":%s,\"label_checksum\":\"0x%016llx\"}\n",
      q.ari, q.nmi, q.predicted_noise_ratio, q.truth_noise_ratio,
      q.predicted_clusters, q.truth_clusters, q.n, histogram.c_str(),
      static_cast<unsigned long long>(q.label_checksum));
  return 0;
}

// Prints the assembled span tree of the run's trace to stderr.
void PrintTrace(bool enabled, uint64_t trace_id) {
  if (!enabled) return;
  const std::vector<pdbscan::telemetry::SpanRecord> spans =
      pdbscan::telemetry::GlobalTraceRing().CollectTrace(trace_id);
  std::fprintf(stderr, "trace (%zu spans):\n", spans.size());
  std::fputs(pdbscan::telemetry::FormatSpanTree(spans).c_str(), stderr);
}

// Build + timed-query measurements of one mode run.
struct PerfRecord {
  double build_seconds = 0;
  std::vector<double> query_seconds;  // One entry per --repeat query.
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

void EmitPerf(const PerfRecord& perf, const std::string& mode,
              const pdbscan::Options& options, double epsilon, size_t minpts,
              size_t n, int dim) {
  double total = 0;
  for (const double s : perf.query_seconds) total += s;
  const double qps =
      total > 0 ? static_cast<double>(perf.query_seconds.size()) / total : 0;
  std::printf(
      "#perf {\"schema\":\"pdbscan-perf-v1\",\"mode\":\"%s\","
      "\"method\":\"%s\",\"metric\":\"%s\",\"eps\":%.17g,\"min_pts\":%zu,"
      "\"n\":%zu,\"dim\":%d,\"threads\":%d,\"repeat\":%zu,"
      "\"build_seconds\":%.17g,\"qps\":%.17g,\"p50_ms\":%.17g,"
      "\"p99_ms\":%.17g}\n",
      mode.c_str(), options.Name().c_str(),
      pdbscan::MetricName(options.metric), epsilon, minpts, n, dim,
      pdbscan::parallel::num_workers(), perf.query_seconds.size(),
      perf.build_seconds, qps, 1e3 * Percentile(perf.query_seconds, 0.5),
      1e3 * Percentile(perf.query_seconds, 0.99));
}

// The telemetry histogram snapshot of the run: the per-query latency
// distribution over --repeat queries, in the same pdbscan-telemetry-v1
// JSON a Stats scrape returns (bench_runner.py attaches it per arm).
void EmitTelemetry(const PerfRecord& perf) {
  pdbscan::telemetry::LatencyHistogram hist;
  for (const double s : perf.query_seconds) {
    hist.Record(static_cast<uint64_t>(s * 1e9));
  }
  std::vector<pdbscan::telemetry::MetricValue> values;
  pdbscan::telemetry::AppendHistogram(values, "query_latency",
                                      hist.Snapshot());
  pdbscan::telemetry::AppendCounter(
      values, "trace_spans_recorded",
      static_cast<double>(pdbscan::telemetry::GlobalTraceRing().appended()));
  pdbscan::telemetry::AppendCounter(
      values, "trace_spans_dropped",
      static_cast<double>(pdbscan::telemetry::GlobalTraceRing().dropped()));
  std::printf("#telemetry %s\n",
              pdbscan::telemetry::RenderJson(std::move(values)).c_str());
}

// Runs the requested execution surface: one timed build, then `repeat`
// timed queries (all identical by the bit-identity contract — the repeats
// measure latency, not different answers). Returns the last clustering.
template <int D>
pdbscan::Clustering RunMode(const std::vector<pdbscan::Point<D>>& points,
                            double epsilon, size_t minpts,
                            const pdbscan::Options& options,
                            const std::string& mode, size_t repeat,
                            size_t shards, size_t counts_cap,
                            PerfRecord* perf) {
  const size_t cap =
      counts_cap != 0 ? counts_cap : std::max<size_t>(minpts, 64);
  pdbscan::Clustering result;
  pdbscan::util::Timer timer;
  auto time_queries = [&](auto&& run_once) {
    perf->query_seconds.reserve(repeat);
    for (size_t r = 0; r < repeat; ++r) {
      timer.Reset();
      result = run_once();
      perf->query_seconds.push_back(timer.Seconds());
    }
  };
  if (mode == "engine") {
    pdbscan::DbscanEngine<D> engine(options);
    engine.SetPoints(points);
    result = engine.Run(epsilon, minpts);  // Build: cells + counts + query.
    perf->build_seconds = timer.Seconds();
    time_queries([&] { return engine.Run(epsilon, minpts); });
  } else if (mode == "pool") {
    auto index = pdbscan::CellIndex<D>::Build(points, epsilon, cap, options);
    pdbscan::EnginePool<D> pool(index);
    perf->build_seconds = timer.Seconds();
    time_queries([&] { return pool.Run(minpts); });
  } else if (mode == "sharded") {
    pdbscan::ShardedClusterer<D> sharded(points, epsilon, cap, shards,
                                         options);
    perf->build_seconds = timer.Seconds();
    time_queries([&] { return sharded.Run(minpts); });
  } else if (mode == "streaming") {
    // Feed the dataset as 8 insert batches — the representative streaming
    // pattern (each batch recounts only its dirty footprint).
    pdbscan::StreamingClusterer<D> stream(epsilon, cap, options);
    const size_t batches = 8;
    for (size_t b = 0; b < batches; ++b) {
      const size_t begin = points.size() * b / batches;
      const size_t end = points.size() * (b + 1) / batches;
      stream.Insert(std::span<const pdbscan::Point<D>>(points.data() + begin,
                                                       end - begin));
    }
    perf->build_seconds = timer.Seconds();
    time_queries([&] { return stream.Run(minpts); });
  } else if (mode == "serving") {
    auto index = pdbscan::CellIndex<D>::Build(points, epsilon, cap, options);
    pdbscan::EnginePool<D> pool(index);
    pdbscan::ServingScheduler<D> server(pool);
    perf->build_seconds = timer.Seconds();
    time_queries([&] {
      pdbscan::ServeResult r = server.Submit(minpts);
      if (!r.ok()) throw std::runtime_error("serving request failed");
      return std::move(r.clustering);
    });
  } else {
    throw std::invalid_argument("unknown --mode: " + mode);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <input.csv> <epsilon> <minpts> "
                 "[--method NAME] [--metric l2|l1|linf] "
                 "[--mode engine|pool|sharded|streaming|serving] "
                 "[--repeat N] [--shards N] [--quality FILE] "
                 "[--rho R] [--bucketing] [--threads T] "
                 "[--out FILE] [--save-index FILE] [--counts-cap N] "
                 "[--load-index FILE] [--load-mode owned|mapped] "
                 "[--journal FILE] [--trace]\n",
                 argv[0]);
    return 2;
  }
  const std::string input = argv[1];
  const double epsilon = std::atof(argv[2]);
  const size_t minpts = static_cast<size_t>(std::atoll(argv[3]));
  pdbscan::Options options;
  std::string out_path, save_index, load_index, journal_path, quality_path;
  std::string mode = "engine";
  pdbscan::LoadMode load_mode = pdbscan::LoadMode::kOwned;
  size_t counts_cap = 0;
  size_t repeat = 1;
  size_t shards = 4;
  bool trace = false;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--method") {
      const double rho = options.rho;
      const pdbscan::Metric metric = options.metric;
      options = MethodByName(next());
      options.rho = rho;
      options.metric = metric;
    } else if (arg == "--metric") {
      const std::string name = next();
      if (!pdbscan::ParseMetric(name, &options.metric)) {
        std::fprintf(stderr, "unknown --metric: %s\n", name.c_str());
        return 2;
      }
    } else if (arg == "--mode") {
      mode = next();
    } else if (arg == "--repeat") {
      repeat = std::max<size_t>(1, static_cast<size_t>(std::atoll(next())));
    } else if (arg == "--shards") {
      shards = std::max<size_t>(1, static_cast<size_t>(std::atoll(next())));
    } else if (arg == "--quality") {
      quality_path = next();
    } else if (arg == "--rho") {
      options.rho = std::atof(next());
    } else if (arg == "--bucketing") {
      options.bucketing = true;
    } else if (arg == "--threads") {
      pdbscan::parallel::set_num_workers(std::atoi(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--save-index") {
      save_index = next();
    } else if (arg == "--counts-cap") {
      counts_cap = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--load-index") {
      load_index = next();
    } else if (arg == "--load-mode") {
      const std::string mode = next();
      if (mode == "owned") {
        load_mode = pdbscan::LoadMode::kOwned;
      } else if (mode == "mapped") {
        load_mode = pdbscan::LoadMode::kMapped;
      } else {
        std::fprintf(stderr, "unknown --load-mode: %s\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--journal") {
      journal_path = next();
    } else if (arg == "--trace") {
      trace = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (!journal_path.empty() && load_index.empty()) {
    std::fprintf(stderr, "--journal requires --load-index\n");
    return 2;
  }
  pdbscan::telemetry::InitTraceFromEnv();
  if (trace) pdbscan::telemetry::SetTraceEnabled(true);
  trace = pdbscan::telemetry::TraceEnabled();
  const uint64_t trace_id = trace ? pdbscan::telemetry::NewTraceId() : 0;
  // Every span opened on this thread (and everything the serving scheduler
  // propagates from it) carries the run's trace id.
  pdbscan::telemetry::ScopedTraceContext trace_ctx(trace_id);

  // --- Serve from a persisted snapshot (+ optional journal replay). -------
  if (!load_index.empty()) {
    try {
      const pdbscan::SnapshotInfo info = pdbscan::PeekSnapshot(load_index);
      std::fprintf(stderr,
                   "snapshot %s: d=%d, %llu points, %llu cells, eps=%g, "
                   "cap=%zu, %.1f MB%s\n",
                   load_index.c_str(), info.dim,
                   static_cast<unsigned long long>(info.num_points),
                   static_cast<unsigned long long>(info.num_cells),
                   info.epsilon, info.counts_cap,
                   static_cast<double>(info.file_bytes) / (1024.0 * 1024.0),
                   info.has_stream_state ? ", streaming checkpoint" : "");
      return pdbscan::DispatchDim(info.dim, [&]<int D>() -> int {
        pdbscan::util::Timer load_timer;
        pdbscan::Clustering result;
        if (journal_path.empty()) {
          auto index = pdbscan::LoadIndex<D>(load_index, load_mode);
          std::fprintf(stderr, "loaded in %.3fs (%s)\n", load_timer.Seconds(),
                       load_mode == pdbscan::LoadMode::kMapped ? "mapped"
                                                               : "owned");
          pdbscan::util::Timer run_timer;
          pdbscan::QueryContext<D> ctx;
          result = ctx.Run(index, minpts);
          PrintSummary(result, "loaded-index", run_timer.Seconds());
        } else {
          auto loaded =
              pdbscan::SnapshotReader<D>::Load(load_index, load_mode);
          if (!loaded.has_stream_state) {
            std::fprintf(stderr,
                         "%s is not a streaming checkpoint; cannot replay "
                         "a journal onto it\n",
                         load_index.c_str());
            return 1;
          }
          pdbscan::DynamicCellIndex<D> dynamic(
              loaded.index, std::span<const uint64_t>(loaded.live_ids),
              loaded.next_id);
          auto scan = pdbscan::UpdateJournal<D>::Scan(journal_path);
          pdbscan::UpdateJournal<D>::RequireMatch(
              journal_path, scan, dynamic.epsilon(), dynamic.counts_cap(),
              dynamic.options());
          size_t replayed = 0;
          if (scan.generation == loaded.journal_generation) {
            for (const auto& rec : scan.records) {
              dynamic.ApplyUpdates(
                  std::span<const pdbscan::Point<D>>(rec.inserts),
                  std::span<const uint64_t>(rec.erases));
              ++replayed;
            }
          } else if (loaded.journal_generation == scan.generation + 1) {
            // Crash between checkpoint steps: the snapshot already holds
            // everything this journal does — nothing to replay.
            std::fprintf(stderr,
                         "journal predates the checkpoint (generation %llu "
                         "vs %llu); already folded in, nothing to replay\n",
                         static_cast<unsigned long long>(scan.generation),
                         static_cast<unsigned long long>(
                             loaded.journal_generation));
          } else {
            std::fprintf(stderr,
                         "error: %s: journal generation %llu cannot pair "
                         "with snapshot generation %llu\n",
                         journal_path.c_str(),
                         static_cast<unsigned long long>(scan.generation),
                         static_cast<unsigned long long>(
                             loaded.journal_generation));
            return 1;
          }
          std::fprintf(stderr,
                       "recovered in %.3fs: %zu journal records replayed, "
                       "%zu live points\n",
                       load_timer.Seconds(), replayed, dynamic.num_points());
          pdbscan::util::Timer run_timer;
          pdbscan::QueryContext<D> ctx;
          result = ctx.Run(dynamic.snapshot(), minpts);
          PrintSummary(result, "recovered-index", run_timer.Seconds());
        }
        const int quality_rc = EmitQuality(result, quality_path);
        if (quality_rc != 0) return quality_rc;
        PrintTrace(trace, trace_id);
        return WriteLabels(result, out_path);
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  // --- Build from CSV (optionally persisting the index). ------------------
  pdbscan::util::Timer load_timer;
  pdbscan::data::FlatDataset dataset;
  try {
    dataset = pdbscan::data::ReadCsv(input);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu points (d=%d) in %.3fs\n", dataset.size(),
               dataset.dim, load_timer.Seconds());

  pdbscan::util::Timer run_timer;
  pdbscan::Clustering result;
  PerfRecord perf;
  try {
    if (!save_index.empty()) {
      // Freeze an index (so there is something durable to save), query it,
      // and persist it.
      const size_t cap =
          counts_cap != 0 ? counts_cap : std::max<size_t>(minpts, 64);
      result = pdbscan::DispatchDim(dataset.dim, [&]<int D>() {
        const auto points = pdbscan::data::FromFlat<D>(dataset);
        auto index = pdbscan::CellIndex<D>::Build(points, epsilon, cap,
                                                  options);
        pdbscan::SaveIndex<D>(save_index, *index);
        std::fprintf(stderr, "index saved to %s (%.1f MB)\n",
                     save_index.c_str(),
                     static_cast<double>(
                         pdbscan::persist::FileBytes(save_index)) /
                         (1024.0 * 1024.0));
        pdbscan::QueryContext<D> ctx;
        return ctx.Run(index, minpts);
      });
    } else {
      {
        pdbscan::telemetry::TraceSpan root_span("cli_run");
        result = pdbscan::DispatchDim(dataset.dim, [&]<int D>() {
          const auto points = pdbscan::data::FromFlat<D>(dataset);
          return RunMode<D>(points, epsilon, minpts, options, mode, repeat,
                            shards, counts_cap, &perf);
        });
      }
      EmitPerf(perf, mode, options, epsilon, minpts, dataset.size(),
               dataset.dim);
      EmitTelemetry(perf);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  PrintSummary(result, options.Name() + "/" + mode, run_timer.Seconds());
  PrintTrace(trace, trace_id);
  const int quality_rc = EmitQuality(result, quality_path);
  if (quality_rc != 0) return quality_rc;
  return WriteLabels(result, out_path);
}
