// Command-line DBSCAN over CSV files.
//
// Usage:
//   pdbscan_cli <input.csv> <epsilon> <minpts> [options]
//     --method NAME     our-exact (default), our-exact-qt, our-approx,
//                       our-approx-qt, grid-bcp, grid-usec, grid-delaunay,
//                       box-bcp, box-usec, box-delaunay
//     --rho R           approximation parameter (default 0.01)
//     --bucketing       enable the bucketing heuristic
//     --threads T       worker count (default: hardware)
//     --out FILE        write "cluster_id" per input row (default: stdout
//                       summary only)
//
// The input CSV holds one point per line, comma-separated coordinates.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "data/io.h"
#include "pdbscan/pdbscan.h"
#include "util/timer.h"

namespace {

pdbscan::Options MethodByName(const std::string& name) {
  using namespace pdbscan;
  if (name == "our-exact") return OurExact();
  if (name == "our-exact-qt") return OurExactQt();
  if (name == "our-approx") return OurApprox();
  if (name == "our-approx-qt") return OurApproxQt();
  if (name == "grid-bcp") return Our2dGridBcp();
  if (name == "grid-usec") return Our2dGridUsec();
  if (name == "grid-delaunay") return Our2dGridDelaunay();
  if (name == "box-bcp") return Our2dBoxBcp();
  if (name == "box-usec") return Our2dBoxUsec();
  if (name == "box-delaunay") return Our2dBoxDelaunay();
  std::fprintf(stderr, "unknown method: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: %s <input.csv> <epsilon> <minpts> "
                         "[--method NAME] [--rho R] [--bucketing] "
                         "[--threads T] [--out FILE]\n",
                 argv[0]);
    return 2;
  }
  const std::string input = argv[1];
  const double epsilon = std::atof(argv[2]);
  const size_t minpts = static_cast<size_t>(std::atoll(argv[3]));
  pdbscan::Options options;
  std::string out_path;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--method") {
      const double rho = options.rho;
      options = MethodByName(next());
      options.rho = rho;
    } else if (arg == "--rho") {
      options.rho = std::atof(next());
    } else if (arg == "--bucketing") {
      options.bucketing = true;
    } else if (arg == "--threads") {
      pdbscan::parallel::set_num_workers(std::atoi(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  pdbscan::util::Timer load_timer;
  pdbscan::data::FlatDataset dataset;
  try {
    dataset = pdbscan::data::ReadCsv(input);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu points (d=%d) in %.3fs\n", dataset.size(),
               dataset.dim, load_timer.Seconds());

  pdbscan::util::Timer run_timer;
  pdbscan::Clustering result;
  try {
    result = pdbscan::Dbscan(dataset.coords.data(), dataset.size(),
                             dataset.dim, epsilon, minpts, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const double secs = run_timer.Seconds();

  size_t core = 0, noise = 0;
  for (size_t i = 0; i < result.size(); ++i) {
    core += result.is_core[i];
    noise += result.cluster[i] == pdbscan::Clustering::kNoise;
  }
  std::fprintf(stderr,
               "%s: %zu clusters, %zu core / %zu noise of %zu points, %.3fs "
               "(%d threads)\n",
               options.Name().c_str(), result.num_clusters, core, noise,
               result.size(), secs, pdbscan::parallel::num_workers());

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << "cluster_id\n";
    for (size_t i = 0; i < result.size(); ++i) out << result.cluster[i] << '\n';
    std::fprintf(stderr, "labels written to %s\n", out_path.c_str());
  }
  return 0;
}
