// Command-line DBSCAN over CSV files, with index persistence.
//
// Usage:
//   pdbscan_cli <input.csv> <epsilon> <minpts> [options]
//     --method NAME     our-exact (default), our-exact-qt, our-approx,
//                       our-approx-qt, grid-bcp, grid-usec, grid-delaunay,
//                       box-bcp, box-usec, box-delaunay
//     --rho R           approximation parameter (default 0.01)
//     --bucketing       enable the bucketing heuristic
//     --threads T       worker count (default: hardware)
//     --out FILE        write "cluster_id" per input row (default: stdout
//                       summary only)
//     --save-index FILE build a frozen CellIndex from the input and persist
//                       it as a versioned snapshot before querying
//     --counts-cap N    min_pts cap baked into a saved index (default:
//                       max(minpts, 64); larger min_pts queries recount)
//     --load-index FILE serve from a persisted snapshot instead of
//                       building: <input.csv> may be "-" and <epsilon> is
//                       taken from the snapshot (pass 0). The snapshot's
//                       dimension is auto-detected.
//     --load-mode MODE  owned (default) copies the snapshot into memory;
//                       mapped serves it zero-copy from the file mapping
//     --journal FILE    with --load-index: replay this streaming update
//                       journal on top of the loaded checkpoint before
//                       querying (recovery = snapshot + journal)
//
// The input CSV holds one point per line, comma-separated coordinates.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <string>

#include "data/io.h"
#include "dbscan/stats.h"
#include "kernels/kernel_api.h"
#include "pdbscan/pdbscan.h"
#include "util/timer.h"

namespace {

pdbscan::Options MethodByName(const std::string& name) {
  using namespace pdbscan;
  if (name == "our-exact") return OurExact();
  if (name == "our-exact-qt") return OurExactQt();
  if (name == "our-approx") return OurApprox();
  if (name == "our-approx-qt") return OurApproxQt();
  if (name == "grid-bcp") return Our2dGridBcp();
  if (name == "grid-usec") return Our2dGridUsec();
  if (name == "grid-delaunay") return Our2dGridDelaunay();
  if (name == "box-bcp") return Our2dBoxBcp();
  if (name == "box-usec") return Our2dBoxUsec();
  if (name == "box-delaunay") return Our2dBoxDelaunay();
  std::fprintf(stderr, "unknown method: %s\n", name.c_str());
  std::exit(2);
}

void PrintSummary(const pdbscan::Clustering& result, const std::string& label,
                  double secs) {
  size_t core = 0, noise = 0;
  for (size_t i = 0; i < result.size(); ++i) {
    core += result.is_core[i];
    noise += result.cluster[i] == pdbscan::Clustering::kNoise;
  }
  std::fprintf(stderr,
               "%s: %zu clusters, %zu core / %zu noise of %zu points, %.3fs "
               "(%d threads)\n",
               label.c_str(), result.num_clusters, core, noise, result.size(),
               secs, pdbscan::parallel::num_workers());
  const auto& stats = pdbscan::dbscan::GlobalStats();
  std::fprintf(
      stderr,
      "kernels: %s dispatch, %zu simd batches, %zu box-pruned / %zu "
      "norm-pruned points\n",
      pdbscan::kernels::LevelName(static_cast<pdbscan::kernels::Level>(
          stats.kernel_dispatch_level.load(std::memory_order_relaxed))),
      stats.kernel_batches.load(std::memory_order_relaxed),
      stats.kernel_points_pruned_box.load(std::memory_order_relaxed),
      stats.kernel_points_pruned_norm.load(std::memory_order_relaxed));
}

int WriteLabels(const pdbscan::Clustering& result,
                const std::string& out_path) {
  if (out_path.empty()) return 0;
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  out << "cluster_id\n";
  for (size_t i = 0; i < result.size(); ++i) out << result.cluster[i] << '\n';
  std::fprintf(stderr, "labels written to %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <input.csv> <epsilon> <minpts> "
                 "[--method NAME] [--rho R] [--bucketing] [--threads T] "
                 "[--out FILE] [--save-index FILE] [--counts-cap N] "
                 "[--load-index FILE] [--load-mode owned|mapped] "
                 "[--journal FILE]\n",
                 argv[0]);
    return 2;
  }
  const std::string input = argv[1];
  const double epsilon = std::atof(argv[2]);
  const size_t minpts = static_cast<size_t>(std::atoll(argv[3]));
  pdbscan::Options options;
  std::string out_path, save_index, load_index, journal_path;
  pdbscan::LoadMode load_mode = pdbscan::LoadMode::kOwned;
  size_t counts_cap = 0;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--method") {
      const double rho = options.rho;
      options = MethodByName(next());
      options.rho = rho;
    } else if (arg == "--rho") {
      options.rho = std::atof(next());
    } else if (arg == "--bucketing") {
      options.bucketing = true;
    } else if (arg == "--threads") {
      pdbscan::parallel::set_num_workers(std::atoi(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--save-index") {
      save_index = next();
    } else if (arg == "--counts-cap") {
      counts_cap = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--load-index") {
      load_index = next();
    } else if (arg == "--load-mode") {
      const std::string mode = next();
      if (mode == "owned") {
        load_mode = pdbscan::LoadMode::kOwned;
      } else if (mode == "mapped") {
        load_mode = pdbscan::LoadMode::kMapped;
      } else {
        std::fprintf(stderr, "unknown --load-mode: %s\n", mode.c_str());
        return 2;
      }
    } else if (arg == "--journal") {
      journal_path = next();
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (!journal_path.empty() && load_index.empty()) {
    std::fprintf(stderr, "--journal requires --load-index\n");
    return 2;
  }

  // --- Serve from a persisted snapshot (+ optional journal replay). -------
  if (!load_index.empty()) {
    try {
      const pdbscan::SnapshotInfo info = pdbscan::PeekSnapshot(load_index);
      std::fprintf(stderr,
                   "snapshot %s: d=%d, %llu points, %llu cells, eps=%g, "
                   "cap=%zu, %.1f MB%s\n",
                   load_index.c_str(), info.dim,
                   static_cast<unsigned long long>(info.num_points),
                   static_cast<unsigned long long>(info.num_cells),
                   info.epsilon, info.counts_cap,
                   static_cast<double>(info.file_bytes) / (1024.0 * 1024.0),
                   info.has_stream_state ? ", streaming checkpoint" : "");
      return pdbscan::DispatchDim(info.dim, [&]<int D>() -> int {
        pdbscan::util::Timer load_timer;
        pdbscan::Clustering result;
        if (journal_path.empty()) {
          auto index = pdbscan::LoadIndex<D>(load_index, load_mode);
          std::fprintf(stderr, "loaded in %.3fs (%s)\n", load_timer.Seconds(),
                       load_mode == pdbscan::LoadMode::kMapped ? "mapped"
                                                               : "owned");
          pdbscan::util::Timer run_timer;
          pdbscan::QueryContext<D> ctx;
          result = ctx.Run(index, minpts);
          PrintSummary(result, "loaded-index", run_timer.Seconds());
        } else {
          auto loaded =
              pdbscan::SnapshotReader<D>::Load(load_index, load_mode);
          if (!loaded.has_stream_state) {
            std::fprintf(stderr,
                         "%s is not a streaming checkpoint; cannot replay "
                         "a journal onto it\n",
                         load_index.c_str());
            return 1;
          }
          pdbscan::DynamicCellIndex<D> dynamic(
              loaded.index, std::span<const uint64_t>(loaded.live_ids),
              loaded.next_id);
          auto scan = pdbscan::UpdateJournal<D>::Scan(journal_path);
          pdbscan::UpdateJournal<D>::RequireMatch(
              journal_path, scan, dynamic.epsilon(), dynamic.counts_cap(),
              dynamic.options());
          size_t replayed = 0;
          if (scan.generation == loaded.journal_generation) {
            for (const auto& rec : scan.records) {
              dynamic.ApplyUpdates(
                  std::span<const pdbscan::Point<D>>(rec.inserts),
                  std::span<const uint64_t>(rec.erases));
              ++replayed;
            }
          } else if (loaded.journal_generation == scan.generation + 1) {
            // Crash between checkpoint steps: the snapshot already holds
            // everything this journal does — nothing to replay.
            std::fprintf(stderr,
                         "journal predates the checkpoint (generation %llu "
                         "vs %llu); already folded in, nothing to replay\n",
                         static_cast<unsigned long long>(scan.generation),
                         static_cast<unsigned long long>(
                             loaded.journal_generation));
          } else {
            std::fprintf(stderr,
                         "error: %s: journal generation %llu cannot pair "
                         "with snapshot generation %llu\n",
                         journal_path.c_str(),
                         static_cast<unsigned long long>(scan.generation),
                         static_cast<unsigned long long>(
                             loaded.journal_generation));
            return 1;
          }
          std::fprintf(stderr,
                       "recovered in %.3fs: %zu journal records replayed, "
                       "%zu live points\n",
                       load_timer.Seconds(), replayed, dynamic.num_points());
          pdbscan::util::Timer run_timer;
          pdbscan::QueryContext<D> ctx;
          result = ctx.Run(dynamic.snapshot(), minpts);
          PrintSummary(result, "recovered-index", run_timer.Seconds());
        }
        return WriteLabels(result, out_path);
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  // --- Build from CSV (optionally persisting the index). ------------------
  pdbscan::util::Timer load_timer;
  pdbscan::data::FlatDataset dataset;
  try {
    dataset = pdbscan::data::ReadCsv(input);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "loaded %zu points (d=%d) in %.3fs\n", dataset.size(),
               dataset.dim, load_timer.Seconds());

  pdbscan::util::Timer run_timer;
  pdbscan::Clustering result;
  try {
    if (!save_index.empty()) {
      // Freeze an index (so there is something durable to save), query it,
      // and persist it.
      const size_t cap =
          counts_cap != 0 ? counts_cap : std::max<size_t>(minpts, 64);
      result = pdbscan::DispatchDim(dataset.dim, [&]<int D>() {
        const auto points = pdbscan::data::FromFlat<D>(dataset);
        auto index = pdbscan::CellIndex<D>::Build(points, epsilon, cap,
                                                  options);
        pdbscan::SaveIndex<D>(save_index, *index);
        std::fprintf(stderr, "index saved to %s (%.1f MB)\n",
                     save_index.c_str(),
                     static_cast<double>(
                         pdbscan::persist::FileBytes(save_index)) /
                         (1024.0 * 1024.0));
        pdbscan::QueryContext<D> ctx;
        return ctx.Run(index, minpts);
      });
    } else {
      result = pdbscan::Dbscan(dataset.coords.data(), dataset.size(),
                               dataset.dim, epsilon, minpts, options);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  PrintSummary(result, options.Name(), run_timer.Seconds());
  return WriteLabels(result, out_path);
}
