#!/usr/bin/env python3
"""Fail on dead relative links in the repo's markdown documentation.

Scans README.md and docs/**/*.md for markdown links and image references,
resolves relative targets against the containing file, and exits non-zero
listing every target that does not exist. External links (http/https/
mailto) and pure in-page anchors are not checked.

Usage: python3 tools/check_links.py [repo_root]
"""

import pathlib
import re
import sys

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions: "[label]: target".
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def targets(text):
    for match in INLINE_LINK.finditer(text):
        yield match.group(1)
    for match in REF_DEF.finditer(text):
        yield match.group(1)


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("**/*.md"))
    files = [f for f in files if f.is_file()]
    if not files:
        print(f"check_links: no markdown files found under {root}")
        return 1

    dead = []
    checked = 0
    for md in files:
        text = md.read_text(encoding="utf-8")
        for target in targets(text):
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            checked += 1
            if not resolved.exists():
                dead.append((md.relative_to(root), target))

    for source, target in dead:
        print(f"DEAD LINK in {source}: {target}")
    print(
        f"check_links: {len(files)} files, {checked} relative links, "
        f"{len(dead)} dead"
    )
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
