// pdbscan_client: command-line client for pdbscan_server, used by the CI
// smoke job and handy for poking a running deployment.
//
//   pdbscan_client --port 7777 info
//   pdbscan_client --port 7777 query 10          # labels checksum + stats
//   pdbscan_client --port 7777 query 10 --trace  # + server-side span tree
//   pdbscan_client --port 7777 stats             # telemetry JSON
//   pdbscan_client --port 7777 stats prom        # Prometheus text
//   pdbscan_client --port 7777 update-random 500 42   # writer only
//   pdbscan_client --port 7777 corrupt           # framing-error probe
//   pdbscan_client --port 7777 shutdown
//
// `corrupt` sends a deliberately damaged frame, verifies the server
// answers with a framing-error response and closes THAT connection, then
// proves a fresh connection still serves queries — the protocol-fuzz
// contract, exercised across real processes. Exits nonzero if the server
// misbehaves at any step.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "net/client.h"
#include "pdbscan/pdbscan.h"
#include "persist/format.h"
#include "telemetry/trace.h"

namespace {

using namespace pdbscan;

void Usage() {
  std::fprintf(stderr,
               "usage: pdbscan_client --port N [--dim D] "
               "info|query M [--trace]|stats [json|prom]|"
               "update-random N SEED|corrupt|shutdown\n");
  std::exit(2);
}

// Rebuilds SpanRecords from the wire encoding (parent-as-index) so the
// server-side breakdown renders with the same tree formatter the server
// uses locally. Names point into `spans`, which must outlive the result.
std::vector<telemetry::SpanRecord> WireSpansToRecords(
    const std::vector<net::WireSpan>& spans) {
  std::vector<telemetry::SpanRecord> recs(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    recs[i].name = spans[i].name.c_str();
    recs[i].trace_id = 1;
    recs[i].span_id = i + 1;
    recs[i].parent_id =
        spans[i].parent >= 0 ? static_cast<uint64_t>(spans[i].parent) + 1 : 0;
    recs[i].start_nanos = spans[i].start_nanos;
    recs[i].end_nanos = spans[i].start_nanos + spans[i].duration_nanos;
  }
  return recs;
}

uint64_t LabelsChecksum(const net::QueryResponse& resp) {
  uint64_t h = persist::Checksum64(resp.cluster.data(),
                                   resp.cluster.size() * sizeof(int64_t));
  h ^= persist::Checksum64(resp.is_core.data(), resp.is_core.size());
  return h;
}

int RunQuery(net::Client& client, uint64_t min_pts, bool trace) {
  const uint64_t trace_id = trace ? telemetry::NewTraceId() : 0;
  const uint64_t wall_start = telemetry::NowNanos();
  const net::QueryResponse resp = client.Query(min_pts, trace_id);
  const uint64_t wall_nanos = telemetry::NowNanos() - wall_start;
  std::printf("generation=%llu num_points=%llu num_clusters=%llu "
              "labels_checksum=%016llx\n",
              static_cast<unsigned long long>(resp.generation),
              static_cast<unsigned long long>(resp.num_points),
              static_cast<unsigned long long>(resp.num_clusters),
              static_cast<unsigned long long>(LabelsChecksum(resp)));
  if (trace) {
    const std::vector<telemetry::SpanRecord> recs =
        WireSpansToRecords(resp.spans);
    const std::vector<telemetry::SpanNode> tree =
        telemetry::BuildSpanTree(recs);
    std::printf("trace_id=%016llx spans=%zu server_self_ms=%.3f "
                "client_wall_ms=%.3f\n",
                static_cast<unsigned long long>(trace_id), recs.size(),
                static_cast<double>(telemetry::TotalSelfNanos(tree)) / 1e6,
                static_cast<double>(wall_nanos) / 1e6);
    std::fputs(telemetry::FormatSpanTree(recs).c_str(), stdout);
  }
  return 0;
}

int RunStats(net::Client& client, const std::string& format) {
  if (format != "json" && format != "prom") Usage();
  const net::StatsResponse resp = client.Stats(format == "prom" ? 1 : 0);
  std::fputs(resp.text.c_str(), stdout);
  if (!resp.text.empty() && resp.text.back() != '\n') std::printf("\n");
  return 0;
}

int RunCorrupt(uint16_t port) {
  // A valid query frame with one payload bit flipped: magic and length are
  // intact, so the server must detect it by CHECKSUM, answer with a
  // framing error and close this connection.
  {
    net::Client client(port);
    net::QueryRequest req;
    req.min_pts = 10;
    std::vector<uint8_t> frame = net::EncodeFrame(
        net::MessageType::kQueryRequest, 7, net::EncodeQueryRequest(req));
    frame[sizeof(net::FrameHeader)] ^= 0x01;
    client.SendRaw(frame);
    client.ShutdownWrite();
    const net::ClientResponse resp = client.Receive();
    if (resp.type != net::MessageType::kErrorResponse ||
        !net::IsFramingError(resp.error.code)) {
      std::fprintf(stderr, "corrupt: expected a framing-error response\n");
      return 1;
    }
    // The poisoned connection must be closed, not left half-serving.
    try {
      while (true) client.Receive();
    } catch (const net::NetError&) {
    }
    std::printf("corrupt: framing error answered and connection closed\n");
  }
  // A fresh connection must serve as if nothing happened.
  net::Client client(port);
  const net::InfoResponse info = client.Info();
  std::printf("corrupt: fresh connection OK (generation=%llu)\n",
              static_cast<unsigned long long>(info.generation));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int dim = 2;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--port" && i + 1 < argc) port = std::atoi(argv[++i]);
    else if (flag == "--dim" && i + 1 < argc) dim = std::atoi(argv[++i]);
    else rest.push_back(flag);
  }
  if (port <= 0 || rest.empty()) Usage();

  try {
    const std::string& cmd = rest[0];
    if (cmd == "info") {
      net::Client client(static_cast<uint16_t>(port));
      const net::InfoResponse info = client.Info();
      std::printf("generation=%llu num_points=%llu eps=%g counts_cap=%llu "
                  "dim=%u role=%s\n",
                  static_cast<unsigned long long>(info.generation),
                  static_cast<unsigned long long>(info.num_points),
                  info.epsilon,
                  static_cast<unsigned long long>(info.counts_cap), info.dim,
                  info.is_writer ? "writer" : "replica");
      return 0;
    }
    if (cmd == "query" && (rest.size() == 2 ||
                           (rest.size() == 3 && rest[2] == "--trace"))) {
      net::Client client(static_cast<uint16_t>(port));
      return RunQuery(client, std::strtoull(rest[1].c_str(), nullptr, 10),
                      rest.size() == 3);
    }
    if (cmd == "stats" && rest.size() <= 2) {
      net::Client client(static_cast<uint16_t>(port));
      return RunStats(client, rest.size() == 2 ? rest[1] : "json");
    }
    if (cmd == "update-random" && rest.size() == 3) {
      const size_t n = std::strtoull(rest[1].c_str(), nullptr, 10);
      const uint64_t seed = std::strtoull(rest[2].c_str(), nullptr, 10);
      return DispatchDim(dim, [&]<int D>() {
        net::Client client(static_cast<uint16_t>(port));
        net::UpdateRequest<D> req;
        std::mt19937_64 rng(seed);
        std::uniform_real_distribution<double> coord(0.0, 1000.0);
        req.inserts.resize(n);
        for (size_t i = 0; i < n; ++i) {
          for (int d = 0; d < D; ++d) req.inserts[i].x[d] = coord(rng);
        }
        const net::UpdateResponse resp = client.Update<D>(req);
        std::printf("generation=%llu first_id=%llu\n",
                    static_cast<unsigned long long>(resp.generation),
                    static_cast<unsigned long long>(resp.first_id));
        return 0;
      });
    }
    if (cmd == "corrupt") return RunCorrupt(static_cast<uint16_t>(port));
    if (cmd == "shutdown") {
      net::Client client(static_cast<uint16_t>(port));
      client.Shutdown();
      std::printf("shutdown acknowledged\n");
      return 0;
    }
    Usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdbscan_client: %s\n", e.what());
    return 1;
  }
  return 0;
}
