#!/usr/bin/env python3
"""Benchmark trajectory runner: sweeps pdbscan_cli over dataset x eps x
min_pts x metric x mode x threads and records schema-versioned perf AND
quality trajectories as BENCH_<host>_<date>.json.

The CLI emits machine-readable lines on stdout (everything human-oriented
goes to stderr):

    #perf {"schema":"pdbscan-perf-v1","mode":...,"qps":...,"p50_ms":...}
    #telemetry {"schema":"pdbscan-telemetry-v1","histograms":{...}}
    #quality {"schema":"pdbscan-quality-v1","ari":...,"nmi":...}

This runner shells out to the CLI for every grid point, scrapes those
lines, self-validates them against the expected schemas, and appends one
record per run to the output file:

    {
      "schema": "pdbscan-bench-v2",
      "host": ..., "platform": ..., "date": ..., "argv": [...],
      "records": [
        {"dataset": ..., "config": {...}, "perf": {...},
         "telemetry": {...}, "quality": {...}}
      ]
    }

v2 adds the per-arm "telemetry" object: the CLI's query-latency histogram
snapshot (log2 buckets, p50/p90/p99 in nanos) plus span-ring counters.

Quality records appear whenever the dataset has a sibling ground-truth
`.labels` file (the golden corpus under tests/data/ always does).

Modes:
  --smoke   ~30 s gate for CI: the golden corpus at eps=1.0/min_pts=3
            across >= 3 execution modes and all three metrics; exits
            nonzero if any record is schema-invalid or any golden ARI
            falls below --min-ari (default 0.99).
  default   full sweep over the requested grid (see --help).

Stdlib only — no third-party imports.
"""

import argparse
import datetime
import itertools
import json
import os
import socket
import platform as platform_mod
import subprocess
import sys

BENCH_SCHEMA = "pdbscan-bench-v2"
PERF_SCHEMA = "pdbscan-perf-v1"
TELEMETRY_SCHEMA = "pdbscan-telemetry-v1"
QUALITY_SCHEMA = "pdbscan-quality-v1"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_DIR = os.path.join(REPO_ROOT, "tests", "data")

# Field name -> accepted types, for the self-validation pass. Numbers may
# arrive as int where the value happens to be integral.
NUM = (int, float)
PERF_FIELDS = {
    "schema": str, "mode": str, "method": str, "metric": str, "eps": NUM,
    "min_pts": int, "n": int, "dim": int, "threads": int, "repeat": int,
    "build_seconds": NUM, "qps": NUM, "p50_ms": NUM, "p99_ms": NUM,
}
TELEMETRY_FIELDS = {
    "schema": str, "counters": dict, "gauges": dict, "histograms": dict,
}
QUALITY_FIELDS = {
    "schema": str, "ari": NUM, "nmi": NUM, "noise_ratio": NUM,
    "truth_noise_ratio": NUM, "clusters": int, "truth_clusters": int,
    "n": int, "cluster_size_histogram": list, "label_checksum": str,
}
# Per-histogram required fields inside a telemetry record.
TELEMETRY_HIST_FIELDS = {
    "count": int, "sum_nanos": int, "p50_nanos": int, "p90_nanos": int,
    "p99_nanos": int, "buckets": list,
}


def validate(record, fields, expected_schema, context):
    """Returns a list of problems (empty = valid)."""
    problems = []
    for key, types in fields.items():
        if key not in record:
            problems.append("%s: missing field %r" % (context, key))
        elif not isinstance(record[key], types):
            problems.append("%s: field %r has type %s, want %s" %
                            (context, key, type(record[key]).__name__, types))
    if record.get("schema") != expected_schema:
        problems.append("%s: schema %r, want %r" %
                        (context, record.get("schema"), expected_schema))
    for key in record:
        if key not in fields:
            problems.append("%s: unexpected field %r" % (context, key))
    return problems


def validate_telemetry(record, context):
    """TELEMETRY_FIELDS plus the per-histogram shape (count/percentiles/
    non-negative log2 buckets)."""
    problems = validate(record, TELEMETRY_FIELDS, TELEMETRY_SCHEMA, context)
    for name, hist in record.get("histograms", {}).items():
        hist_context = "%s histogram %r" % (context, name)
        if not isinstance(hist, dict):
            problems.append("%s: not an object" % hist_context)
            continue
        for key, types in TELEMETRY_HIST_FIELDS.items():
            if key not in hist:
                problems.append("%s: missing field %r" % (hist_context, key))
            elif not isinstance(hist[key], types):
                problems.append("%s: field %r has type %s, want %s" %
                                (hist_context, key,
                                 type(hist[key]).__name__, types))
        total = 0
        for entry in hist.get("buckets", []):
            if (not isinstance(entry, list) or len(entry) != 2 or
                    not all(isinstance(v, int) and v >= 0 for v in entry)):
                problems.append("%s: malformed bucket entry %r" %
                                (hist_context, entry))
                continue
            total += entry[1]
        if isinstance(hist.get("count"), int) and total != hist["count"]:
            problems.append("%s: bucket counts sum to %d, count says %d" %
                            (hist_context, total, hist["count"]))
    return problems


def scrape(stdout):
    """Extracts the #perf / #telemetry / #quality JSON payloads from CLI
    stdout."""
    perf, telemetry, quality = None, None, None
    for line in stdout.splitlines():
        if line.startswith("#perf "):
            perf = json.loads(line[len("#perf "):])
        elif line.startswith("#telemetry "):
            telemetry = json.loads(line[len("#telemetry "):])
        elif line.startswith("#quality "):
            quality = json.loads(line[len("#quality "):])
    return perf, telemetry, quality


def run_case(cli, dataset, labels, eps, min_pts, metric, mode, threads,
             repeat, shards, timeout, verbose):
    cmd = [cli, dataset, str(eps), str(min_pts),
           "--metric", metric, "--mode", mode, "--repeat", str(repeat),
           "--shards", str(shards)]
    if threads > 0:
        cmd += ["--threads", str(threads)]
    if labels:
        cmd += ["--quality", labels]
    if verbose:
        print("+ " + " ".join(cmd), file=sys.stderr)
    record = {
        "dataset": os.path.basename(dataset),
        "config": {"eps": eps, "min_pts": min_pts, "metric": metric,
                   "mode": mode, "threads": threads, "repeat": repeat},
    }
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=timeout)
    except (subprocess.TimeoutExpired, OSError) as e:
        record["error"] = str(e)
        return record
    if proc.returncode != 0:
        record["error"] = ("exit %d: %s" %
                           (proc.returncode, proc.stderr.strip()[-500:]))
        return record
    try:
        perf, telemetry, quality = scrape(proc.stdout)
    except json.JSONDecodeError as e:
        record["error"] = "unparseable machine-readable line: %s" % e
        return record
    if perf is not None:
        record["perf"] = perf
    if telemetry is not None:
        record["telemetry"] = telemetry
    if quality is not None:
        record["quality"] = quality
    if perf is None:
        record["error"] = "no #perf line on stdout"
    return record


def golden_datasets():
    out = []
    if not os.path.isdir(GOLDEN_DIR):
        return out
    for name in sorted(os.listdir(GOLDEN_DIR)):
        if not name.endswith(".csv"):
            continue
        csv = os.path.join(GOLDEN_DIR, name)
        labels = csv[:-len(".csv")] + ".labels"
        out.append((csv, labels if os.path.exists(labels) else None))
    return out


def resolve_datasets(args):
    """--dataset CSV[:LABELS] entries, or the golden corpus by default."""
    if not args.dataset:
        pairs = golden_datasets()
        if not pairs:
            sys.exit("no --dataset given and no golden corpus at %s" %
                     GOLDEN_DIR)
        return pairs
    pairs = []
    for entry in args.dataset:
        csv, _, labels = entry.partition(":")
        if not os.path.exists(csv):
            sys.exit("dataset not found: %s" % csv)
        if labels and not os.path.exists(labels):
            sys.exit("labels not found: %s" % labels)
        if not labels:
            sibling = (csv[:-len(".csv")] + ".labels"
                       if csv.endswith(".csv") else "")
            labels = sibling if sibling and os.path.exists(sibling) else None
        pairs.append((csv, labels))
    return pairs


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--cli",
                        default=os.path.join(REPO_ROOT, "build",
                                             "example_pdbscan_cli"),
                        help="path to the pdbscan_cli binary")
    parser.add_argument("--smoke", action="store_true",
                        help="golden-corpus smoke sweep with the ARI gate")
    parser.add_argument("--dataset", action="append", default=[],
                        metavar="CSV[:LABELS]",
                        help="dataset to sweep (repeatable); default: the "
                             "golden corpus under tests/data/")
    parser.add_argument("--eps", type=float, nargs="+", default=[1.0])
    parser.add_argument("--min-pts", type=int, nargs="+", default=[3])
    parser.add_argument("--metric", nargs="+", default=["l2", "l1", "linf"],
                        choices=["l2", "l1", "linf"])
    parser.add_argument("--mode", nargs="+",
                        default=["engine", "pool", "sharded", "streaming",
                                 "serving"],
                        choices=["engine", "pool", "sharded", "streaming",
                                 "serving"])
    parser.add_argument("--threads", type=int, nargs="+", default=[0],
                        help="worker counts to sweep; 0 = hardware default")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed query repetitions per run (p50/p99)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-run timeout in seconds")
    parser.add_argument("--min-ari", type=float, default=0.99,
                        help="smoke gate: fail if any golden ARI is below")
    parser.add_argument("--out-dir", default=".",
                        help="directory for BENCH_<host>_<date>.json")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    if not os.path.exists(args.cli):
        sys.exit("CLI binary not found: %s (build the repo first, or pass "
                 "--cli)" % args.cli)

    if args.smoke:
        # Small fixed grid, guaranteed to finish fast on the tiny corpus:
        # all golden datasets, all metrics, a >= 3-mode spread.
        datasets = golden_datasets()
        if not datasets:
            sys.exit("smoke mode needs the golden corpus at %s" % GOLDEN_DIR)
        grid_eps, grid_minpts = [1.0], [3]
        grid_metric = ["l2", "l1", "linf"]
        grid_mode = ["engine", "pool", "sharded", "streaming", "serving"]
        grid_threads = [0]
    else:
        datasets = resolve_datasets(args)
        grid_eps, grid_minpts = args.eps, args.min_pts
        grid_metric, grid_mode = args.metric, args.mode
        grid_threads = args.threads

    records, problems = [], []
    for (csv, labels), eps, min_pts, metric, mode, threads in \
            itertools.product(datasets, grid_eps, grid_minpts, grid_metric,
                              grid_mode, grid_threads):
        record = run_case(args.cli, csv, labels, eps, min_pts, metric, mode,
                          threads, args.repeat, args.shards, args.timeout,
                          args.verbose)
        context = "%s eps=%g min_pts=%d %s/%s threads=%d" % (
            record["dataset"], eps, min_pts, metric, mode, threads)
        if "error" in record:
            problems.append("%s: %s" % (context, record["error"]))
        if "perf" in record:
            problems += validate(record["perf"], PERF_FIELDS, PERF_SCHEMA,
                                 context + " #perf")
        if "telemetry" in record:
            problems += validate_telemetry(record["telemetry"],
                                           context + " #telemetry")
        elif "perf" in record:
            problems.append("%s: #perf without a #telemetry line" % context)
        if "quality" in record:
            problems += validate(record["quality"], QUALITY_FIELDS,
                                 QUALITY_SCHEMA, context + " #quality")
        records.append(record)

    out = {
        "schema": BENCH_SCHEMA,
        "host": socket.gethostname(),
        "platform": platform_mod.platform(),
        "date": datetime.date.today().isoformat(),
        "argv": sys.argv[1:],
        "cli": args.cli,
        "records": records,
    }
    os.makedirs(args.out_dir, exist_ok=True)
    out_path = os.path.join(
        args.out_dir,
        "BENCH_%s_%s.json" % (out["host"], out["date"]))
    with open(out_path, "w") as f:
        json.dump(out, f, indent=1)
        f.write("\n")

    quality_runs = [r for r in records if "quality" in r]
    modes_covered = sorted({r["config"]["mode"] for r in records
                            if "perf" in r})
    print("wrote %s: %d records (%d with quality), modes: %s" %
          (out_path, len(records), len(quality_runs),
           ", ".join(modes_covered)))

    for p in problems:
        print("PROBLEM: %s" % p, file=sys.stderr)

    failed = bool(problems)
    if args.smoke:
        if len(modes_covered) < 3:
            print("PROBLEM: smoke covered %d modes, need >= 3" %
                  len(modes_covered), file=sys.stderr)
            failed = True
        if not quality_runs:
            print("PROBLEM: smoke produced no quality records",
                  file=sys.stderr)
            failed = True
        for r in quality_runs:
            ari = r["quality"].get("ari", 0.0)
            if ari < args.min_ari:
                print("PROBLEM: %s %s: ARI %.6f < %.2f" %
                      (r["dataset"], r["config"], ari, args.min_ari),
                      file=sys.stderr)
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
