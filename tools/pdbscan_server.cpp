// pdbscan_server: one node of the distributed serving deployment.
//
//   pdbscan_server --mode writer  --dir /shared/ds --dim 2 --eps 300 \
//                  --counts-cap 100 --port 7777
//   pdbscan_server --mode replica --dir /shared/ds --dim 2 --eps 300 \
//                  --counts-cap 100 --port 7778
//
// The writer owns the dataset: it applies Update requests, WAL-journals
// every batch to rotating segments in --dir and checkpoints snapshots
// there on a cadence. Replicas cold-start from the newest checkpoint
// (mmap) and tail the segments; both roles serve Query/Info through a
// ServingScheduler speaking the net/protocol.h framing.
//
// --port 0 binds an ephemeral port; --port-file writes the bound port
// (atomically, temp + rename) so test harnesses can discover it. The
// process exits 0 on a client Shutdown request or SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "net/client.h"
#include "net/replication.h"
#include "net/server.h"
#include "pdbscan/pdbscan.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

struct Args {
  std::string mode;
  std::string dir;
  int dim = 2;
  double eps = 0;
  size_t counts_cap = 100;
  int port = 0;
  std::string port_file;
  uint64_t checkpoint_every = 64;
  uint64_t rotate_bytes = 1 << 20;
  size_t keep_checkpoints = 2;
  uint64_t poll_ms = 20;
  size_t queue_limit = 256;
  uint64_t timeout_ms = 5000;
  size_t cache_capacity = 64;
  size_t num_executors = 1;
  int workers = 0;
  bool trace = false;
  uint64_t slow_query_ms = 0;  // 0 = slow-query logging off.
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: pdbscan_server --mode writer|replica --dir DIR --eps E\n"
      "  [--dim D] [--counts-cap C] [--port N] [--port-file PATH]\n"
      "  [--checkpoint-every N] [--rotate-bytes N] [--keep-checkpoints N]\n"
      "  [--poll-ms N] [--queue-limit N] [--timeout-ms N]\n"
      "  [--cache-capacity N] [--num-executors N] [--workers N]\n"
      "  [--trace] [--slow-query-ms N]\n");
  std::exit(2);
}

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage();
      return argv[++i];
    };
    if (flag == "--mode") out->mode = next();
    else if (flag == "--dir") out->dir = next();
    else if (flag == "--dim") out->dim = std::atoi(next());
    else if (flag == "--eps") out->eps = std::atof(next());
    else if (flag == "--counts-cap") out->counts_cap = std::strtoull(next(), nullptr, 10);
    else if (flag == "--port") out->port = std::atoi(next());
    else if (flag == "--port-file") out->port_file = next();
    else if (flag == "--checkpoint-every") out->checkpoint_every = std::strtoull(next(), nullptr, 10);
    else if (flag == "--rotate-bytes") out->rotate_bytes = std::strtoull(next(), nullptr, 10);
    else if (flag == "--keep-checkpoints") out->keep_checkpoints = std::strtoull(next(), nullptr, 10);
    else if (flag == "--poll-ms") out->poll_ms = std::strtoull(next(), nullptr, 10);
    else if (flag == "--queue-limit") out->queue_limit = std::strtoull(next(), nullptr, 10);
    else if (flag == "--timeout-ms") out->timeout_ms = std::strtoull(next(), nullptr, 10);
    else if (flag == "--cache-capacity") out->cache_capacity = std::strtoull(next(), nullptr, 10);
    else if (flag == "--num-executors") out->num_executors = std::strtoull(next(), nullptr, 10);
    else if (flag == "--workers") out->workers = std::atoi(next());
    else if (flag == "--trace") out->trace = true;
    else if (flag == "--slow-query-ms") out->slow_query_ms = std::strtoull(next(), nullptr, 10);
    else Usage();
  }
  return !out->mode.empty() && !out->dir.empty() && out->eps > 0;
}

// Written atomically so a polling harness never reads a partial number.
void WritePortFile(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::perror("port-file");
    std::exit(1);
  }
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  std::filesystem::rename(tmp, path);
}

template <int D>
int RunNode(const Args& args) {
  using namespace pdbscan;

  // The registry outlives everything below; nodes and the server register
  // pull sources into it and NetServer answers Stats requests from it.
  telemetry::MetricsRegistry registry;

  parallel::ServingOptions serve_opts;
  serve_opts.queue_limit = args.queue_limit;
  serve_opts.default_timeout_nanos = parallel::MillisToNanos(args.timeout_ms);
  serve_opts.cache_capacity = args.cache_capacity;
  serve_opts.num_executors = args.num_executors;
  if (args.slow_query_ms != 0) {
    serve_opts.slow_query_nanos = parallel::MillisToNanos(args.slow_query_ms);
  }

  net::ServerOptions server_opts;
  server_opts.port = static_cast<uint16_t>(args.port);
  server_opts.registry = &registry;

  std::unique_ptr<net::WriterNode<D>> writer;
  std::unique_ptr<net::ReplicaNode<D>> replica;
  parallel::EnginePool<D>* pool = nullptr;
  typename net::NetServer<D>::UpdateHandler on_update;

  if (args.mode == "writer") {
    net::WriterOptions wopts;
    wopts.rotate_bytes = args.rotate_bytes;
    wopts.checkpoint_every = args.checkpoint_every;
    wopts.keep_checkpoints = args.keep_checkpoints;
    wopts.on_checkpoint = [](uint64_t seq, uint64_t taken) {
      std::fprintf(stderr,
                   "pdbscan_server: checkpoint shipped seq=%llu (total=%llu)\n",
                   static_cast<unsigned long long>(seq),
                   static_cast<unsigned long long>(taken));
    };
    writer = std::make_unique<net::WriterNode<D>>(args.dir, args.eps,
                                                  args.counts_cap, Options(),
                                                  wopts);
    pool = &writer->pool();
    registry.AddSource([&w = *writer](
                           std::vector<telemetry::MetricValue>& out) {
      telemetry::AppendCounter(out, "writer_checkpoints_taken",
                               static_cast<double>(w.checkpoints_taken()));
      telemetry::AppendGauge(out, "writer_seq",
                             static_cast<double>(w.seq()));
    });
    on_update = [&w = *writer](std::span<const Point<D>> inserts,
                               std::span<const uint64_t> erases) {
      net::UpdateResponse resp;
      resp.first_id = w.ApplyUpdates(inserts, erases);
      resp.generation = w.generation();
      return resp;
    };
  } else if (args.mode == "replica") {
    net::ReplicaOptions ropts;
    ropts.poll_millis = args.poll_ms;
    ropts.on_gap_restart = [](uint64_t seq, size_t restarts) {
      std::fprintf(stderr,
                   "pdbscan_server: gap restart — re-based to seq=%llu "
                   "(gap_restarts=%zu)\n",
                   static_cast<unsigned long long>(seq), restarts);
    };
    replica = std::make_unique<net::ReplicaNode<D>>(args.dir, args.eps,
                                                    args.counts_cap,
                                                    Options(), ropts);
    replica->StartTailing();
    pool = &replica->pool();
    registry.AddSource([&r = *replica](
                           std::vector<telemetry::MetricValue>& out) {
      telemetry::AppendCounter(out, "replica_gap_restarts",
                               static_cast<double>(r.gap_restarts()));
      telemetry::AppendGauge(out, "replica_applied_seq",
                             static_cast<double>(r.applied_seq()));
    });
  } else {
    Usage();
  }

  parallel::ServingScheduler<D> scheduler(*pool, serve_opts);
  net::NetServer<D> server(scheduler, *pool, args.eps, args.counts_cap,
                           server_opts, on_update);
  server.Start();
  if (!args.port_file.empty()) WritePortFile(args.port_file, server.port());
  std::fprintf(stderr, "pdbscan_server: %s on 127.0.0.1:%u dir=%s gen=%llu\n",
               args.mode.c_str(), static_cast<unsigned>(server.port()),
               args.dir.c_str(),
               static_cast<unsigned long long>(pool->generation()));

  while (g_signal == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (replica) replica->StopTailing();
  scheduler.Shutdown();
  server.Stop();
  std::fprintf(stderr, "pdbscan_server: clean shutdown (gen=%llu)\n",
               static_cast<unsigned long long>(pool->generation()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) Usage();
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  if (args.workers > 0) pdbscan::parallel::set_num_workers(args.workers);
  pdbscan::telemetry::InitTraceFromEnv();
  if (args.trace) pdbscan::telemetry::SetTraceEnabled(true);
  try {
    return pdbscan::DispatchDim(args.dim,
                                [&]<int D>() { return RunNode<D>(args); });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pdbscan_server: fatal: %s\n", e.what());
    return 1;
  }
}
